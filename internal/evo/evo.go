// Package evo implements an anytime evolutionary solver for the BCC
// objective, after "Evolutionary Optimization of High-Coverage Budgeted
// Classifiers" (arXiv:2110.13067): a population of budget-feasible
// classifier subsets evolves under coverage-aware crossover,
// utility-per-cost mutation and elitist replacement.
//
// Individuals are coverage trackers over the shared instance. The
// initial population holds an IG1-seeded individual (the greedy floor,
// unless disabled) plus random feasible fills; each generation then
// breeds a full cohort of offspring by tournament selection, merges the
// parents' selections greedily by marginal gain density (crossover),
// occasionally swaps a low-density selection for random affordable ones
// (mutation), and carries the elite of the previous generation forward.
//
// A separate incumbent — the best individual ever seen — only improves,
// which is what makes the solver safe under the checkpointed-slice
// protocol of internal/jobs: each slice warm-starts from the previous
// checkpoint via Options.Warm and can only report equal or better
// utility. All randomness flows from a single Options.Seed, so a run is
// bit-for-bit reproducible (satisfying the bccsolve -algo evo -seed N
// determinism contract).
//
// The entry point is anytime: every generation boundary checks the
// guard, per-generation timings land in obs (StageEvoGeneration), and
// the "evo.generation" fault-injection point lets tests cancel or crash
// mid-evolution.
package evo

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/propset"
)

// Options tunes the evolutionary solver. The zero value gives the
// defaults.
type Options struct {
	// Seed drives all randomness (population init, selection, mutation)
	// deterministically. Default 1.
	Seed int64
	// Population is the number of individuals per generation. Default 24.
	Population int
	// Generations caps the number of generations. Default 60.
	Generations int
	// Elite is how many best individuals survive each generation
	// unchanged. Default 4 (clamped below Population).
	Elite int
	// MutationRate is the per-offspring probability of a mutation step.
	// Default 0.3.
	MutationRate float64
	// StallLimit stops the run after this many consecutive generations
	// without incumbent improvement. Default 15; negative disables the
	// early stop.
	StallLimit int
	// DisableGreedyFloor skips the IG1-seeded individual. With the floor
	// enabled (default), the incumbent never trails the IG1 baseline,
	// even when a deadline stops the run mid-generation.
	DisableGreedyFloor bool
	// Warm seeds every individual's base with a previously found
	// feasible plan (the incumbent of an earlier checkpoint or anytime
	// slice), so a resumed run never reports less than its checkpoint.
	Warm []propset.Set
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Population == 0 {
		o.Population = 24
	}
	if o.Population < 2 {
		o.Population = 2
	}
	if o.Generations == 0 {
		o.Generations = 60
	}
	if o.Elite == 0 {
		o.Elite = 4
	}
	if o.Elite >= o.Population {
		o.Elite = o.Population - 1
	}
	if o.MutationRate == 0 {
		o.MutationRate = 0.3
	}
	if o.StallLimit == 0 {
		o.StallLimit = 15
	}
	return o
}

// degradeFloor mirrors the bottom rung of core's degradation ladder:
// with less deadline than this left there is no time to evolve, so the
// solver returns the IG1 greedy fill directly.
const degradeFloor = 50 * time.Millisecond

// Result reports an evolutionary run.
type Result struct {
	Solution *model.Solution
	// Utility is the total utility of the covered queries.
	Utility float64
	// Cost is the total construction cost of the selected classifiers.
	Cost float64
	// Covered is the number of covered queries.
	Covered int
	// Generations is the number of generations executed.
	Generations int
	// Duration is the wall-clock solve time.
	Duration time.Duration
	// Status reports how the run ended; on any non-Complete status the
	// Solution is still the best feasible one found.
	Status guard.Status
	// Err is the context error or the contained panic when Status is
	// not Complete.
	Err error
}

// Solve runs the evolutionary solver to completion.
func Solve(in *model.Instance, opts Options) Result {
	return SolveCtx(context.Background(), in, opts)
}

// SolveCtx is Solve under a context: on deadline expiry or cancellation
// the solver stops at the next guard check and returns the incumbent —
// the best feasible individual ever seen, never worse than the IG1
// baseline once the floor individual is evaluated. Panics are contained
// and reported as Status Recovered.
func SolveCtx(ctx context.Context, in *model.Instance, opts Options) (res Result) {
	start := time.Now()
	opts = opts.withDefaults()
	g := guard.New(ctx)
	rec := obs.FromContext(ctx)
	rng := rand.New(rand.NewSource(opts.Seed))

	var best *cover.Tracker
	gens := 0
	finish := func() Result {
		var r Result
		if best != nil {
			r = Result{
				Solution: best.Solution(),
				Utility:  best.Utility(),
				Cost:     best.Cost(),
				Covered:  best.CoveredCount(),
			}
		} else {
			r = Result{Solution: model.NewSolution(in)}
		}
		r.Generations = gens
		r.Duration = time.Since(start)
		r.Status = g.Status()
		r.Err = g.Err()
		return r
	}
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finish()
		}
	}()

	// Shared base: free classifiers plus the warm incumbent. Every
	// individual is a clone of it, so prior progress is never lost.
	free := cover.New(in)
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			free.Add(c.Props)
		}
	}
	base := free.Clone()
	for _, w := range opts.Warm {
		if base.Has(w) {
			continue
		}
		if base.Cost()+in.Cost(w) <= in.Budget()+1e-9 {
			base.Add(w)
		}
	}
	best = base.Clone()
	if g.Tripped() {
		return finish()
	}

	// Bottom rung of the degradation ladder: almost no deadline budget
	// left, so skip evolution entirely — the IG1 greedy still yields a
	// sane, feasible plan.
	if left, ok := g.Remaining(); ok && left < degradeFloor {
		if !opts.DisableGreedyFloor {
			core.IG1Fill(g, best)
			if len(opts.Warm) > 0 {
				cold := free.Clone()
				core.IG1Fill(g, cold)
				updateIncumbent(&best, []*cover.Tracker{cold})
			}
		}
		return finish()
	}

	// Candidate pool: every priced classifier that could ever fit the
	// budget, in the instance's deterministic order.
	classifiers := in.Classifiers()
	var pool []int
	for ci := range classifiers {
		c := classifiers[ci]
		if c.Cost <= 0 || c.Cost > in.Budget()+1e-9 {
			continue
		}
		pool = append(pool, ci)
	}

	// Initial population: the IG1 floor individual plus random feasible
	// fills. The floor is evaluated into the incumbent immediately, so
	// any later stop returns at least the IG1 baseline.
	pop := make([]*cover.Tracker, 0, opts.Population)
	if !opts.DisableGreedyFloor {
		fl := base.Clone()
		core.IG1Fill(g, fl)
		pop = append(pop, fl)
		// A poor warm seed can crowd the budget out of the floor
		// individual, so with a warm base the cold IG1 floor joins the
		// population too — the warm contract (algo.Descriptor.WarmStart)
		// promises never to land below the cold IG1 utility.
		if len(opts.Warm) > 0 {
			cold := free.Clone()
			core.IG1Fill(g, cold)
			pop = append(pop, cold)
		}
	}
	for len(pop) < opts.Population && !g.Tripped() {
		ind := base.Clone()
		randomFill(rng, ind, pool, classifiers)
		pop = append(pop, ind)
	}
	updateIncumbent(&best, pop)

	stall := 0
	for gens < opts.Generations && !g.Tripped() {
		t0 := rec.Start()
		guard.Inject("evo.generation")
		offspring := make([]*cover.Tracker, 0, opts.Population)
		for i := 0; i < opts.Population; i++ {
			if g.Check() {
				break
			}
			p1 := tournament(rng, pop)
			p2 := tournament(rng, pop)
			child := crossover(base, p1, p2)
			if rng.Float64() < opts.MutationRate {
				mutate(rng, child, pool, classifiers)
			}
			offspring = append(offspring, child)
		}
		gens++
		pop = nextGen(pop, offspring, opts.Elite, opts.Population)
		improved := updateIncumbent(&best, pop)
		rec.End(obs.StageEvoGeneration, t0, len(pop))
		if improved {
			stall = 0
		} else if stall++; opts.StallLimit > 0 && stall >= opts.StallLimit {
			break
		}
	}
	return finish()
}

// better orders individuals: more utility wins, ties go to lower cost.
func better(a, b *cover.Tracker) bool {
	if a.Utility() != b.Utility() {
		return a.Utility() > b.Utility()
	}
	return a.Cost() < b.Cost()
}

// updateIncumbent folds the population's best into the incumbent,
// reporting whether it improved. The incumbent is cloned so later
// generations cannot regress it — the monotonicity the checkpointed
// job slices rely on.
func updateIncumbent(best **cover.Tracker, pop []*cover.Tracker) bool {
	improved := false
	for _, t := range pop {
		if better(t, *best) {
			*best = t.Clone()
			improved = true
		}
	}
	return improved
}

// tournament samples two individuals uniformly and returns the better.
func tournament(rng *rand.Rand, pop []*cover.Tracker) *cover.Tracker {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if better(b, a) {
		return b
	}
	return a
}

// randomFill greedily adds classifiers in a random order while they fit
// the remaining budget.
func randomFill(rng *rand.Rand, t *cover.Tracker, pool []int, classifiers []model.Classifier) {
	for _, pi := range rng.Perm(len(pool)) {
		c := classifiers[pool[pi]]
		if t.Has(c.Props) || c.Cost > t.Remaining()+1e-9 {
			continue
		}
		t.Add(c.Props)
	}
}

// surrogateGain is the coverage-progress surrogate for adding c to t:
// Σ_q U(q)·|res(q)∩c|/|res(q)| over the uncovered queries containing c
// (the same surrogate internal/submod selects by).
func surrogateGain(t *cover.Tracker, c propset.Set) float64 {
	in := t.Instance()
	total := 0.0
	for _, qi := range t.RelevantQueries(c) {
		if t.Covered(qi) {
			continue
		}
		res := t.Residual(qi)
		hit := len(res.Intersect(c))
		if hit == 0 {
			continue
		}
		total += in.Queries()[qi].Utility * float64(hit) / float64(res.Len())
	}
	return total
}

// crossover breeds a child from the union of both parents' selections:
// starting from the shared base, it repeatedly adds the affordable
// parental classifier with the best marginal gain density against the
// child's current coverage (coverage-aware, rather than uniform gene
// mixing). Deterministic given the parents.
func crossover(base, p1, p2 *cover.Tracker) *cover.Tracker {
	child := base.Clone()
	in := child.Instance()
	genes := p1.SelectedSets()
	for _, s := range p2.SelectedSets() {
		if !p1.Has(s) {
			genes = append(genes, s)
		}
	}
	used := make([]bool, len(genes))
	for {
		bi, bscore := -1, 0.0
		for i, s := range genes {
			if used[i] {
				continue
			}
			if child.Has(s) {
				used[i] = true
				continue
			}
			cost := in.Cost(s)
			if cost > child.Remaining()+1e-9 {
				// The remaining budget only shrinks: skip permanently.
				used[i] = true
				continue
			}
			gain := surrogateGain(child, s)
			if gain <= 0 {
				used[i] = true
				continue
			}
			score := gain
			if cost > 0 {
				score = gain / cost
			}
			if score > bscore {
				bi, bscore = i, score
			}
		}
		if bi < 0 {
			break
		}
		child.Add(genes[bi])
		used[bi] = true
	}
	return child
}

// mutate perturbs an individual: it drops the selected classifier with
// the worse utility-per-cost density among a sampled pair (freeing
// budget from a weak selection), then spends the freed budget on random
// affordable additions.
func mutate(rng *rand.Rand, t *cover.Tracker, pool []int, classifiers []model.Classifier) {
	var priced []propset.Set
	for _, s := range t.SelectedSets() {
		if t.Instance().Cost(s) > 0 {
			priced = append(priced, s)
		}
	}
	if len(priced) > 0 {
		a := priced[rng.Intn(len(priced))]
		b := priced[rng.Intn(len(priced))]
		drop := a
		if removalDensity(t, b) < removalDensity(t, a) {
			drop = b
		}
		t.Remove(drop)
	}
	if len(pool) == 0 {
		return
	}
	for tries := 0; tries < 8; tries++ {
		c := classifiers[pool[rng.Intn(len(pool))]]
		if t.Has(c.Props) || c.Cost > t.Remaining()+1e-9 {
			continue
		}
		t.Add(c.Props)
	}
}

// removalDensity measures a selected classifier's exclusive utility per
// cost by removing it, reading the utility drop, and adding it back
// (which exactly restores the tracker).
func removalDensity(t *cover.Tracker, s propset.Set) float64 {
	before := t.Utility()
	t.Remove(s)
	loss := before - t.Utility()
	t.Add(s)
	return loss / t.Instance().Cost(s)
}

// nextGen forms the next population: the elite of the old generation
// survives unchanged, the best offspring fill the rest (padded from the
// old population when a guard trip cut the cohort short).
func nextGen(old, offspring []*cover.Tracker, elite, size int) []*cover.Tracker {
	sortPop(old)
	sortPop(offspring)
	if elite > len(old) {
		elite = len(old)
	}
	next := make([]*cover.Tracker, 0, size)
	next = append(next, old[:elite]...)
	for _, t := range offspring {
		if len(next) == size {
			break
		}
		next = append(next, t)
	}
	for i := elite; len(next) < size && i < len(old); i++ {
		next = append(next, old[i])
	}
	return next
}

func sortPop(pop []*cover.Tracker) {
	sort.SliceStable(pop, func(i, j int) bool { return better(pop[i], pop[j]) })
}
