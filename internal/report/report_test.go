package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func demoSolution(t *testing.T) *model.Solution {
	t.Helper()
	in := buildDemo(t)
	res := core.Solve(in, core.Options{})
	return res.Solution
}

func buildDemo(t *testing.T) *model.Instance {
	t.Helper()
	b := model.NewBuilder()
	b.AddQuery(8, "wooden", "table")
	b.AddQuery(3, "round", "table")
	b.AddQuery(5, "running", "shoes")
	b.SetCost(4, "wooden")
	b.SetCost(2, "table")
	b.SetCost(3, "round")
	b.SetCost(6, "running", "shoes")
	b.SetCost(math.Inf(1), "wooden", "table")
	b.SetCost(5, "round", "table")
	b.SetCost(9, "running")
	b.SetCost(9, "shoes")
	return b.MustInstance(9)
}

func TestBuildPlanAccounting(t *testing.T) {
	sol := demoSolution(t)
	p := Build(sol, 5)
	if p.Budget != 9 {
		t.Fatalf("Budget = %v", p.Budget)
	}
	if math.Abs(p.SpentCost-sol.Cost()) > 1e-9 {
		t.Fatalf("SpentCost %v != %v", p.SpentCost, sol.Cost())
	}
	if math.Abs(p.Utility-sol.Utility()) > 1e-9 {
		t.Fatalf("Utility %v != %v", p.Utility, sol.Utility())
	}
	if p.NumQueries != 3 {
		t.Fatalf("NumQueries = %d", p.NumQueries)
	}
	if len(p.Classifiers) != sol.Size() {
		t.Fatalf("Classifiers = %d, want %d", len(p.Classifiers), sol.Size())
	}
	// Exclusive utilities cannot exceed total utility.
	for _, c := range p.Classifiers {
		if c.Exclusive < 0 || c.Exclusive > p.Utility+1e-9 {
			t.Fatalf("bad exclusive utility %v", c.Exclusive)
		}
	}
	// Covered + uncovered must partition the queries.
	if p.NumCovered+len(p.Uncovered) != p.NumQueries {
		t.Fatalf("partition broken: %d covered + %d uncovered != %d",
			p.NumCovered, len(p.Uncovered), p.NumQueries)
	}
}

func TestPlanUncoveredCheapestCover(t *testing.T) {
	sol := demoSolution(t)
	p := Build(sol, 5)
	for _, m := range p.Uncovered {
		if m.CheapestCover < 0 {
			t.Fatalf("negative cheapest cover for %v", m.Props)
		}
	}
	// The demo optimum covers the two table queries; "running shoes"
	// remains, coverable for its classifier cost 6.
	found := false
	for _, m := range p.Uncovered {
		if strings.Contains(strings.Join(m.Props, " "), "running") {
			found = true
			if m.CheapestCover != 6 {
				t.Fatalf("running shoes cheapest cover = %v, want 6", m.CheapestCover)
			}
		}
	}
	if !found {
		t.Fatal("expected 'running shoes' among uncovered")
	}
}

func TestTopMissingBound(t *testing.T) {
	b := model.NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddQuery(float64(i+1), "p"+string(rune('a'+i)))
	}
	in := b.MustInstance(0) // nothing affordable
	sol := model.NewSolution(in)
	p := Build(sol, 3)
	if len(p.Uncovered) != 3 {
		t.Fatalf("topMissing not applied: %d", len(p.Uncovered))
	}
	// Must be the highest-utility ones, descending.
	if p.Uncovered[0].Utility != 10 || p.Uncovered[2].Utility != 8 {
		t.Fatalf("wrong top uncovered: %+v", p.Uncovered)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	sol := demoSolution(t)
	p := Build(sol, 0)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Utility != p.Utility || len(back.Classifiers) != len(p.Classifiers) {
		t.Fatal("JSON round trip lost data")
	}
}

func TestWriteText(t *testing.T) {
	sol := demoSolution(t)
	p := Build(sol, 2)
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Construction plan", "build {", "Top uncovered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}
