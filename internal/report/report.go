// Package report renders solved BCC instances for human and machine
// consumption: which classifiers to build, what each contributes, what
// remains uncovered, and how the budget was spent. cmd/bccsolve's -plan
// flag emits the JSON form; the text form targets analysts deciding
// whether to adopt the plan.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/propset"
)

// Plan is the serializable construction plan derived from a solution.
type Plan struct {
	Budget      float64       `json:"budget"`
	SpentCost   float64       `json:"spent_cost"`
	Utility     float64       `json:"utility"`
	TotalU      float64       `json:"total_utility"`
	NumCovered  int           `json:"covered_queries"`
	NumQueries  int           `json:"total_queries"`
	Classifiers []PlanEntry   `json:"classifiers"`
	Uncovered   []PlanMissing `json:"top_uncovered,omitempty"`
}

// PlanEntry is one classifier to build.
type PlanEntry struct {
	Props []string `json:"props"`
	Cost  float64  `json:"cost"`
	// Supports lists the covered queries this classifier participates in
	// (it is a subset of each).
	Supports int `json:"supports_queries"`
	// Exclusive is the utility of covered queries that would become
	// uncovered if only this classifier were dropped.
	Exclusive float64 `json:"exclusive_utility"`
}

// PlanMissing is an uncovered query worth surfacing.
type PlanMissing struct {
	Props   []string `json:"props"`
	Utility float64  `json:"utility"`
	// CheapestCover is the additional cost that would cover it (+Inf
	// omitted).
	CheapestCover float64 `json:"cheapest_cover,omitempty"`
}

// Build assembles a Plan from a solution. topMissing bounds the uncovered
// list (0 keeps all).
func Build(sol *model.Solution, topMissing int) Plan {
	in := sol.Instance()
	u := in.Universe()
	names := func(s propset.Set) []string {
		out := make([]string, s.Len())
		for i, id := range s {
			out[i] = u.Name(id)
		}
		return out
	}

	p := Plan{
		Budget:     in.Budget(),
		SpentCost:  sol.Cost(),
		Utility:    sol.Utility(),
		TotalU:     in.TotalUtility(),
		NumQueries: in.NumQueries(),
	}

	covered := sol.CoveredQueries()
	p.NumCovered = len(covered)

	// Per-classifier accounting.
	for _, c := range sol.Classifiers() {
		entry := PlanEntry{Props: names(c.Props), Cost: c.Cost}
		// Supports: covered queries that contain this classifier.
		for _, q := range covered {
			if c.Props.SubsetOf(q.Props) {
				entry.Supports++
			}
		}
		// Exclusive utility: drop it and see what uncovers.
		probe := sol.Clone()
		probe.Remove(c.Props)
		entry.Exclusive = sol.Utility() - probe.Utility()
		p.Classifiers = append(p.Classifiers, entry)
	}
	sort.Slice(p.Classifiers, func(i, j int) bool {
		if p.Classifiers[i].Exclusive != p.Classifiers[j].Exclusive {
			return p.Classifiers[i].Exclusive > p.Classifiers[j].Exclusive
		}
		return strings.Join(p.Classifiers[i].Props, " ") < strings.Join(p.Classifiers[j].Props, " ")
	})

	// Top uncovered queries by utility.
	var missing []model.Query
	for _, q := range in.Queries() {
		if !sol.Covers(q.Props) {
			missing = append(missing, q)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Utility > missing[j].Utility })
	if topMissing > 0 && len(missing) > topMissing {
		missing = missing[:topMissing]
	}
	for _, q := range missing {
		m := PlanMissing{Props: names(q.Props), Utility: q.Utility}
		if cost := cheapestCoverCost(sol, q.Props); cost >= 0 {
			m.CheapestCover = cost
		}
		p.Uncovered = append(p.Uncovered, m)
	}
	return p
}

// cheapestCoverCost computes the min additional cost to cover q given the
// solution, or -1 if impossible.
func cheapestCoverCost(sol *model.Solution, q propset.Set) float64 {
	in := sol.Instance()
	res := sol.Residual(q)
	if res.Empty() {
		return 0
	}
	pos := map[propset.ID]uint{}
	for i, p := range res {
		pos[p] = uint(i)
	}
	full := (1 << uint(res.Len())) - 1
	const unset = -1.0
	dp := make([]float64, full+1)
	for i := 1; i <= full; i++ {
		dp[i] = unset
	}
	var cands []struct {
		mask int
		cost float64
	}
	q.Subsets(func(sub propset.Set) {
		if sol.Has(sub) {
			return
		}
		cost := in.Cost(sub)
		if math.IsInf(cost, 1) || math.IsNaN(cost) || cost < 0 {
			return
		}
		mask := 0
		for _, p := range sub {
			if b, ok := pos[p]; ok {
				mask |= 1 << b
			}
		}
		if mask != 0 {
			cands = append(cands, struct {
				mask int
				cost float64
			}{mask, cost})
		}
	})
	for m := 0; m <= full; m++ {
		if dp[m] == unset {
			continue
		}
		for _, cd := range cands {
			nm := m | cd.mask
			if nm == m {
				continue
			}
			if c := dp[m] + cd.cost; dp[nm] == unset || c < dp[nm] {
				dp[nm] = c
			}
		}
	}
	if dp[full] == unset {
		return -1
	}
	return dp[full]
}

// WriteJSON emits the plan as indented JSON.
func (p Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteText emits a human-readable plan summary.
func (p Plan) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Construction plan: %d classifiers, cost %.2f of budget %.2f\n",
		len(p.Classifiers), p.SpentCost, p.Budget)
	fmt.Fprintf(&b, "Covers %d/%d queries for utility %.2f of %.2f (%.1f%%)\n",
		p.NumCovered, p.NumQueries, p.Utility, p.TotalU, pct(p.Utility, p.TotalU))
	for _, c := range p.Classifiers {
		fmt.Fprintf(&b, "  build {%s}  cost %-7.2f supports %-4d exclusive utility %.2f\n",
			strings.Join(c.Props, " "), c.Cost, c.Supports, c.Exclusive)
	}
	if len(p.Uncovered) > 0 {
		fmt.Fprintf(&b, "Top uncovered queries:\n")
		for _, m := range p.Uncovered {
			line := fmt.Sprintf("  {%s}  utility %.2f", strings.Join(m.Props, " "), m.Utility)
			if m.CheapestCover > 0 {
				line += fmt.Sprintf("  (coverable for %.2f more)", m.CheapestCover)
			}
			fmt.Fprintf(&b, "%s\n", line)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
