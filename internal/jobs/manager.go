package jobs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/guard"
	"repro/internal/obs"
)

// SolveFunc runs one anytime solve slice for a job: solve req under
// ctx's deadline, warm-started from cp (nil on the first slice), and
// return the anytime response. internal/server supplies this (it owns
// validation, fingerprinting and the solver dispatch), which keeps this
// package free of a dependency on the solver stack — and testable with
// a fake solver.
type SolveFunc func(ctx context.Context, req *api.JobRequest, cp *Checkpoint) (*api.SolveResponse, error)

// Config tunes a Manager. Dir and Solve are required; the zero value of
// everything else gets sensible defaults.
type Config struct {
	// Dir is the job store directory.
	Dir string
	// Workers is the dedicated job worker count (default 2). Jobs run on
	// their own small pool, separate from the server's interactive solve
	// pool, so a long background solve never starves a synchronous
	// request.
	Workers int
	// MaxJobs bounds queued+running jobs (default 256); submits beyond
	// it are rejected with ErrQueueFull.
	MaxJobs int
	// CheckpointInterval is the first solve slice's duration (default
	// 2s). Slices double from there (2s, 4s, 8s, ...): early checkpoints
	// land quickly, while a long solve eventually gets a slice big
	// enough to run to completion, keeping total re-solve overhead
	// within 2× of a single uninterrupted run.
	CheckpointInterval time.Duration
	// DefaultDeadline applies when a request carries no job_deadline_ms
	// (default 10m); MaxDeadline caps any requested deadline (default
	// 1h). The deadline charges cumulative solve wall-clock, surviving
	// restarts.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Solve runs one slice (required).
	Solve SolveFunc
	// Registry, when non-nil, receives the bcc_jobs_* metric families.
	Registry *obs.Registry
	// Logf, when non-nil, receives startup/resume/quarantine log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 256
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 2 * time.Second
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 10 * time.Minute
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = time.Hour
	}
	return c
}

// Submission failure sentinels, mapped to HTTP codes by the server.
var (
	// ErrQueueFull: too many queued+running jobs (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed: the manager is draining (HTTP 503).
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound: no such job (HTTP 404).
	ErrNotFound = errors.New("jobs: not found")
)

// jobDurationBuckets suit background solves: seconds to an hour.
var jobDurationBuckets = []float64{0.05, 0.25, 1, 5, 15, 60, 300, 900, 3600}

// job is the in-memory side of one record: the mutable state shared by
// the worker running it, cancellation, and status queries.
type job struct {
	mu          sync.Mutex
	rec         *Record
	canceled    bool               // Cancel was called; runner finalizes
	cancelSlice context.CancelFunc // non-nil while a slice is running
	lastResp    *api.SolveResponse // most recent slice response (this process)
}

// Manager owns the store, the worker pool and the in-memory job table.
// Create one with Open (which also requeues persisted incomplete jobs)
// and Close it to drain: in-flight jobs checkpoint and are persisted
// back to queued, so the next Open resumes them.
type Manager struct {
	cfg   Config
	store *Store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool
	crash  atomic.Bool // test hook: skip the graceful requeue persist

	mu    sync.Mutex
	jobs  map[string]*job
	queue chan string

	queued      atomic.Int64
	running     atomic.Int64
	completed   atomic.Uint64
	failed      atomic.Uint64
	canceled    atomic.Uint64
	resumed     atomic.Uint64
	checkpoints atomic.Uint64
	cpErrors    atomic.Uint64
	storeErrors atomic.Uint64
	quarantined atomic.Uint64
	orphans     atomic.Uint64

	durations *obs.Histogram
}

// Stats is the /v1/statz view of the subsystem.
type Stats struct {
	Queued           int64  `json:"queued"`
	Running          int64  `json:"running"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`
	Canceled         uint64 `json:"canceled"`
	Resumed          uint64 `json:"resumed"`
	Checkpoints      uint64 `json:"checkpoints"`
	CheckpointErrors uint64 `json:"checkpoint_errors"`
	StoreErrors      uint64 `json:"store_errors"`
	Quarantined      uint64 `json:"quarantined"`
	OrphansSwept     uint64 `json:"orphans_swept"`
}

// Open builds a Manager over cfg.Dir, scans the store, requeues every
// incomplete job (counting jobs that had started as resumed), and
// starts the workers. Corrupt records are quarantined and counted,
// never fatal.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Solve == nil {
		return nil, errors.New("jobs: Config.Solve is required")
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		store:  store,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
		// 2× headroom: the admission check (live < MaxJobs) and the
		// enqueue are not one atomic step, and a channel send must never
		// block a submit handler.
		queue: make(chan string, 2*cfg.MaxJobs),
	}
	if cfg.Registry != nil {
		m.initMetrics(cfg.Registry)
	}
	if err := m.resumeFromStore(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// resumeFromStore scans the store and requeues incomplete jobs. The
// jobs.resume fault point fires per requeued job; an armed panic is
// contained and counted, but the job is requeued regardless — losing a
// submitted job is the one failure mode this subsystem exists to rule
// out.
func (m *Manager) resumeFromStore() error {
	scan, err := m.store.Scan()
	if err != nil {
		return err
	}
	if scan.Quarantined > 0 {
		m.quarantined.Add(uint64(scan.Quarantined))
		m.logf("jobs: quarantined %d corrupt record(s) in %s", scan.Quarantined, m.store.Dir())
	}
	if scan.OrphansSwept > 0 {
		m.orphans.Add(uint64(scan.OrphansSwept))
		m.logf("jobs: swept %d orphaned tmp file(s) in %s", scan.OrphansSwept, m.store.Dir())
	}
	for _, rec := range scan.Records {
		j := &job{rec: rec}
		m.jobs[rec.ID] = j
		if api.JobTerminal(rec.State) {
			continue
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					m.storeErrors.Add(1)
					m.logf("jobs: contained resume fault for %s: %v", rec.ID, p)
				}
			}()
			guard.Inject("jobs.resume")
		}()
		if rec.State == api.JobRunning || rec.Checkpoint != nil {
			// The job had started before the restart: count a genuine
			// resume (it will warm-start from its checkpoint, if any).
			rec.Resumes++
			m.resumed.Add(1)
		}
		rec.State = api.JobQueued
		rec.UpdatedUnixMS = time.Now().UnixMilli()
		if err := m.store.Put(rec); err != nil {
			// The old record still says running; a crash before the next
			// transition just resumes it again. Degrade, don't drop.
			m.storeErrors.Add(1)
		}
		m.queued.Add(1)
		m.queue <- rec.ID
		m.logf("jobs: requeued %s (algo %s, %d resume(s))", rec.ID, rec.Algo, rec.Resumes)
	}
	return nil
}

func (m *Manager) initMetrics(reg *obs.Registry) {
	reg.GaugeFunc("bcc_jobs_queued", "Jobs waiting for a job worker.", nil,
		func() float64 { return float64(m.queued.Load()) })
	reg.GaugeFunc("bcc_jobs_running", "Jobs currently solving on a job worker.", nil,
		func() float64 { return float64(m.running.Load()) })
	reg.CounterFunc("bcc_jobs_completed_total", "Jobs finished with a result.", nil,
		func() float64 { return float64(m.completed.Load()) })
	reg.CounterFunc("bcc_jobs_failed_total", "Jobs finished with an error.", nil,
		func() float64 { return float64(m.failed.Load()) })
	reg.CounterFunc("bcc_jobs_canceled_total", "Jobs canceled by the caller.", nil,
		func() float64 { return float64(m.canceled.Load()) })
	reg.CounterFunc("bcc_jobs_resumed_total", "Jobs requeued from a persisted record after a restart.", nil,
		func() float64 { return float64(m.resumed.Load()) })
	reg.CounterFunc("bcc_jobs_checkpoints_total", "Incumbent checkpoints persisted between solve slices.", nil,
		func() float64 { return float64(m.checkpoints.Load()) })
	reg.CounterFunc("bcc_jobs_checkpoint_errors_total", "Checkpoint writes that failed or were faulted (degraded, not fatal).", nil,
		func() float64 { return float64(m.cpErrors.Load()) })
	reg.CounterFunc("bcc_jobs_store_errors_total", "Job record writes that failed outside checkpointing.", nil,
		func() float64 { return float64(m.storeErrors.Load()) })
	reg.CounterFunc("bcc_jobs_corrupt_total", "Corrupt job records quarantined (*.corrupt) at startup.", nil,
		func() float64 { return float64(m.quarantined.Load()) })
	reg.CounterFunc("bcc_jobs_orphan_swept_total", "Orphaned tmp files from mid-write crashes swept at startup.", nil,
		func() float64 { return float64(m.orphans.Load()) })
	m.durations = reg.Histogram("bcc_jobs_duration_seconds",
		"Cumulative solve wall-clock of finished jobs (across resumes).", nil, jobDurationBuckets)
}

// Stats captures the counters in one pass.
func (m *Manager) Stats() Stats {
	return Stats{
		Queued:           m.queued.Load(),
		Running:          m.running.Load(),
		Completed:        m.completed.Load(),
		Failed:           m.failed.Load(),
		Canceled:         m.canceled.Load(),
		Resumed:          m.resumed.Load(),
		Checkpoints:      m.checkpoints.Load(),
		CheckpointErrors: m.cpErrors.Load(),
		StoreErrors:      m.storeErrors.Load(),
		Quarantined:      m.quarantined.Load(),
		OrphansSwept:     m.orphans.Load(),
	}
}

// newID returns a 16-hex-char random job ID.
func newID() (string, error) {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Submit validates nothing about the solve itself (the server did that
// before calling); it assigns an ID, clamps the job deadline, persists
// the queued record and enqueues it. A successful return means the job
// is durable: from here it can only end in a terminal state.
func (m *Manager) Submit(req *api.JobRequest, algo, fingerprint string) (*api.JobStatus, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	deadline := m.cfg.DefaultDeadline
	if req.JobDeadlineMS > 0 {
		deadline = time.Duration(req.JobDeadlineMS) * time.Millisecond
	}
	if deadline > m.cfg.MaxDeadline {
		deadline = m.cfg.MaxDeadline
	}
	id, err := newID()
	if err != nil {
		return nil, err
	}
	now := time.Now().UnixMilli()
	rec := &Record{
		ID:            id,
		State:         api.JobQueued,
		Algo:          algo,
		Fingerprint:   fingerprint,
		Request:       req,
		CreatedUnixMS: now,
		UpdatedUnixMS: now,
		DeadlineMS:    deadline.Milliseconds(),
	}

	m.mu.Lock()
	live := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if !api.JobTerminal(j.rec.State) {
			live++
		}
		j.mu.Unlock()
	}
	if live >= m.cfg.MaxJobs {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.mu.Unlock()

	// The durability gate: the caller only gets an ID after the record
	// is on disk. A failed (or faulted) append answers an error — the
	// caller never holds an ID that could silently vanish.
	if err := m.store.Put(rec); err != nil {
		m.storeErrors.Add(1)
		return nil, fmt.Errorf("jobs: persisting submission: %w", err)
	}

	// Snapshot the answer before the job becomes visible to workers —
	// one may start mutating the record the instant it is enqueued.
	st := rec.Status()
	j := &job{rec: rec}
	m.mu.Lock()
	if m.closed.Load() {
		m.mu.Unlock()
		_ = m.store.Delete(id)
		return nil, ErrClosed
	}
	m.jobs[id] = j
	m.evictTerminalLocked()
	m.mu.Unlock()
	m.queued.Add(1)
	m.queue <- id
	return st, nil
}

// evictTerminalLocked bounds the in-memory table: terminal jobs beyond
// 8× MaxJobs (oldest first) are dropped from the map — their records
// stay on disk, and Get falls back to the store.
func (m *Manager) evictTerminalLocked() {
	limit := m.cfg.MaxJobs * 8
	if len(m.jobs) <= limit {
		return
	}
	type aged struct {
		id string
		ts int64
	}
	var terminal []aged
	for id, j := range m.jobs {
		j.mu.Lock()
		if api.JobTerminal(j.rec.State) {
			terminal = append(terminal, aged{id, j.rec.UpdatedUnixMS})
		}
		j.mu.Unlock()
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].ts < terminal[k].ts })
	for _, t := range terminal {
		if len(m.jobs) <= limit {
			break
		}
		delete(m.jobs, t.id)
	}
}

// lookup finds a job in memory, falling back to the store for evicted
// terminal records.
func (m *Manager) lookup(id string) (*job, *Record, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		return j, nil, nil
	}
	rec, err := m.store.Get(id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, ErrNotFound
		}
		return nil, nil, err
	}
	return nil, rec, nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (*api.JobStatus, error) {
	j, rec, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if j != nil {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.rec.Status(), nil
	}
	return rec.Status(), nil
}

// Result returns a job's terminal result, or its status when the job is
// still queued/running (result == nil then).
func (m *Manager) Result(id string) (*api.SolveResponse, *api.JobStatus, error) {
	j, rec, err := m.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	if j != nil {
		j.mu.Lock()
		rec = j.rec
		defer j.mu.Unlock()
	}
	return rec.Result, rec.Status(), nil
}

// List returns every known job's status, newest first.
func (m *Manager) List() []*api.JobStatus {
	m.mu.Lock()
	out := make([]*api.JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		j.mu.Lock()
		out = append(out, j.rec.Status())
		j.mu.Unlock()
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if out[i].CreatedUnixMS != out[k].CreatedUnixMS {
			return out[i].CreatedUnixMS > out[k].CreatedUnixMS
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// Cancel asks a job to stop. A queued job finalizes immediately; a
// running one stops at its next slice boundary (the slice context is
// canceled right away). Canceling a terminal job is a no-op answering
// the current status.
func (m *Manager) Cancel(id string) (*api.JobStatus, error) {
	j, rec, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if j == nil {
		return rec.Status(), nil // evicted ⇒ terminal already
	}
	j.mu.Lock()
	if api.JobTerminal(j.rec.State) {
		defer j.mu.Unlock()
		return j.rec.Status(), nil
	}
	j.canceled = true
	wasQueued := j.rec.State == api.JobQueued
	if j.cancelSlice != nil {
		j.cancelSlice()
	}
	if wasQueued {
		// Not picked up yet: finalize here; the worker skips canceled
		// queued jobs when it dequeues the stale ID.
		m.finalizeLocked(j, api.JobCanceled, nil, "canceled before start")
	}
	defer j.mu.Unlock()
	return j.rec.Status(), nil
}

// Close drains gracefully: no new submits, running slices are canceled,
// and each in-flight job is persisted back to queued with its latest
// checkpoint so the next Open resumes it.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	m.cancel()
	m.wg.Wait()
}

// abort is the crash simulation used by chaos tests: stop everything
// without the graceful requeue persist, leaving the on-disk records
// exactly as a SIGKILL would.
func (m *Manager) abort() {
	m.crash.Store(true)
	if m.closed.Swap(true) {
		return
	}
	m.cancel()
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case id := <-m.queue:
			m.run(id)
		}
	}
}

// finalizeLocked moves a job (whose mutex the caller holds) to a
// terminal state and persists it. Store failures are counted and
// degrade durability of the *final* state only — after a crash the job
// would re-run from its checkpoint, which duplicates work but never
// loses it.
func (m *Manager) finalizeLocked(j *job, state string, result *api.SolveResponse, errMsg string) {
	prev := j.rec.State
	j.rec.State = state
	j.rec.Result = result
	j.rec.Error = errMsg
	j.rec.UpdatedUnixMS = time.Now().UnixMilli()
	if err := m.store.Put(j.rec); err != nil {
		m.storeErrors.Add(1)
	}
	switch prev {
	case api.JobQueued:
		m.queued.Add(-1)
	case api.JobRunning:
		m.running.Add(-1)
	}
	switch state {
	case api.JobCompleted:
		m.completed.Add(1)
	case api.JobFailed:
		m.failed.Add(1)
	case api.JobCanceled:
		m.canceled.Add(1)
	}
	if m.durations != nil {
		var elapsed float64
		if cp := j.rec.Checkpoint; cp != nil {
			elapsed = cp.ElapsedMS / 1000
		}
		m.durations.Observe(elapsed)
	}
}

// run executes one job to a terminal state — or to a graceful-drain
// requeue. It owns the job's record for the duration.
func (m *Manager) run(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return
	}

	j.mu.Lock()
	if api.JobTerminal(j.rec.State) { // canceled while queued
		j.mu.Unlock()
		return
	}
	if j.canceled {
		m.finalizeLocked(j, api.JobCanceled, nil, "canceled before start")
		j.mu.Unlock()
		return
	}
	j.rec.State = api.JobRunning
	j.rec.Attempts++
	j.rec.UpdatedUnixMS = time.Now().UnixMilli()
	if err := m.store.Put(j.rec); err != nil {
		m.storeErrors.Add(1) // degraded: disk still says queued
	}
	req := j.rec.Request
	algo := j.rec.Algo
	deadline := time.Duration(j.rec.DeadlineMS) * time.Millisecond
	cp := j.rec.Checkpoint
	j.mu.Unlock()
	m.queued.Add(-1)
	m.running.Add(1)

	for {
		var elapsed time.Duration
		if cp != nil {
			elapsed = time.Duration(cp.ElapsedMS * float64(time.Millisecond))
		}
		remaining := deadline - elapsed
		if remaining <= 0 {
			// Deadline exhausted: the incumbent is the answer.
			j.mu.Lock()
			m.finalizeLocked(j, api.JobCompleted, m.resultFromCheckpoint(j, cp), "")
			j.mu.Unlock()
			return
		}
		slice := m.sliceFor(cp, remaining)

		sliceCtx, cancelSlice := context.WithTimeout(m.ctx, slice)
		j.mu.Lock()
		j.cancelSlice = cancelSlice
		j.mu.Unlock()
		sliceStart := time.Now()
		resp, err := m.solveSlice(sliceCtx, req, cp)
		cancelSlice()
		j.mu.Lock()
		j.cancelSlice = nil
		j.mu.Unlock()

		if err != nil {
			j.mu.Lock()
			m.finalizeLocked(j, api.JobFailed, nil, err.Error())
			j.mu.Unlock()
			return
		}
		cp = betterCheckpoint(algo, cp, checkpointFrom(resp, cp, time.Since(sliceStart)))
		j.mu.Lock()
		j.rec.Checkpoint = cp
		j.lastResp = resp

		switch {
		case j.canceled:
			m.finalizeLocked(j, api.JobCanceled, nil, "canceled")
			j.mu.Unlock()
			return
		case m.ctx.Err() != nil:
			// Manager shutting down. Graceful drain: persist the job
			// back to queued with its checkpoint so the next Open
			// resumes it. Crash simulation: leave disk as-is (running).
			if !m.crash.Load() {
				j.rec.State = api.JobQueued
				j.rec.UpdatedUnixMS = time.Now().UnixMilli()
				if err := m.store.Put(j.rec); err != nil {
					m.storeErrors.Add(1)
				}
			}
			j.mu.Unlock()
			m.running.Add(-1)
			m.queued.Add(1)
			return
		case resp.Status == guardComplete || resp.Status == guardRecovered:
			// The slice ran to the solver's own termination: done.
			m.finalizeLocked(j, api.JobCompleted, m.resultFromCheckpoint(j, cp), "")
			j.mu.Unlock()
			return
		}

		// Mid-flight checkpoint between slices. The fault point models a
		// crash between the solve and the write; a failed or faulted
		// write degrades resume granularity (the previous checkpoint
		// stays current on disk), never the job.
		if err := m.writeCheckpoint(j); err != nil {
			m.cpErrors.Add(1)
		} else {
			m.checkpoints.Add(1)
		}
		j.mu.Unlock()
	}
}

// Spellings of guard.Status the manager compares against (string-typed
// on the wire).
const (
	guardComplete  = "complete"
	guardRecovered = "recovered"
)

// solveSlice runs cfg.Solve with panic containment: a panicking solver
// (or armed fault below it) fails the slice, not the worker.
func (m *Manager) solveSlice(ctx context.Context, req *api.JobRequest, cp *Checkpoint) (resp *api.SolveResponse, err error) {
	defer func() {
		if p := recover(); p != nil {
			resp, err = nil, fmt.Errorf("jobs: solve slice panicked: %v", p)
		}
	}()
	return m.cfg.Solve(ctx, req, cp)
}

// writeCheckpoint persists the job's record (caller holds j.mu) behind
// the jobs.checkpoint fault point, containing armed panics into errors.
func (m *Manager) writeCheckpoint(j *job) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("jobs: checkpoint panicked: %v", p)
		}
	}()
	guard.Inject("jobs.checkpoint")
	j.rec.UpdatedUnixMS = time.Now().UnixMilli()
	return m.store.Put(j.rec)
}

// sliceFor sizes the next solve slice: the checkpoint interval doubled
// per completed slice (so checkpoint overhead stays logarithmic in the
// solve length), capped by the job's remaining deadline.
func (m *Manager) sliceFor(cp *Checkpoint, remaining time.Duration) time.Duration {
	slice := m.cfg.CheckpointInterval
	n := 0
	if cp != nil {
		n = cp.Slices
	}
	for i := 0; i < n && slice < remaining; i++ {
		slice *= 2
	}
	if slice > remaining {
		slice = remaining
	}
	return slice
}

// checkpointFrom converts one slice's anytime response into a
// checkpoint candidate, accumulating elapsed time and slice count on
// top of the previous checkpoint.
func checkpointFrom(resp *api.SolveResponse, prev *Checkpoint, sliceWall time.Duration) *Checkpoint {
	cp := &Checkpoint{
		Status:      resp.Status,
		Utility:     resp.Utility,
		Cost:        resp.Cost,
		Covered:     resp.Covered,
		Achieved:    resp.Achieved,
		Classifiers: resp.Classifiers,
		Slices:      1,
		ElapsedMS:   float64(sliceWall) / float64(time.Millisecond),
		SavedUnixMS: time.Now().UnixMilli(),
	}
	if prev != nil {
		cp.Slices = prev.Slices + 1
		cp.ElapsedMS += prev.ElapsedMS
	}
	return cp
}

// betterCheckpoint keeps the incumbent monotone even if a slice
// regresses (warm-start normally prevents that; this is the
// belt-and-braces): for gmc3, achieving the target dominates, then
// lower cost among achievers; otherwise higher utility, then lower
// cost. Bookkeeping (slices, elapsed) always advances to the new
// values.
func betterCheckpoint(algo string, old, new *Checkpoint) *Checkpoint {
	if old == nil {
		return new
	}
	keepOld := false
	if algo == "gmc3" {
		oldAch := old.Achieved != nil && *old.Achieved
		newAch := new.Achieved != nil && *new.Achieved
		switch {
		case oldAch && !newAch:
			keepOld = true
		case oldAch == newAch && oldAch:
			keepOld = new.Cost > old.Cost
		default:
			keepOld = new.Utility < old.Utility
		}
	} else {
		keepOld = new.Utility < old.Utility ||
			(new.Utility == old.Utility && new.Cost > old.Cost)
	}
	if keepOld {
		merged := *old
		merged.Slices = new.Slices
		merged.ElapsedMS = new.ElapsedMS
		merged.SavedUnixMS = new.SavedUnixMS
		// Keep the incumbent's terminal status only if the new slice
		// finished the search; a deadline slice stays deadline.
		merged.Status = new.Status
		return &merged
	}
	return new
}

// resultFromCheckpoint materializes a job's final SolveResponse. When
// the last slice's live response is the incumbent (the common case) it
// is used directly; after a resume with no further slice, the response
// is synthesized from the checkpoint. Caller holds j.mu.
func (m *Manager) resultFromCheckpoint(j *job, cp *Checkpoint) *api.SolveResponse {
	if cp == nil {
		// Deadline exhausted before the first slice ever finished: the
		// trivially feasible empty plan, mirroring the solver contract.
		return &api.SolveResponse{
			Fingerprint: j.rec.Fingerprint,
			Algo:        j.rec.Algo,
			Status:      "deadline",
			SolverError: "job deadline exhausted before the first checkpoint",
		}
	}
	if lr := j.lastResp; lr != nil && lr.Utility == cp.Utility && lr.Cost == cp.Cost {
		resp := *lr
		resp.DurationMS = cp.ElapsedMS
		return &resp
	}
	resp := &api.SolveResponse{
		Fingerprint: j.rec.Fingerprint,
		Algo:        j.rec.Algo,
		Status:      cp.Status,
		Utility:     cp.Utility,
		Cost:        cp.Cost,
		Covered:     cp.Covered,
		Achieved:    cp.Achieved,
		Classifiers: cp.Classifiers,
		DurationMS:  cp.ElapsedMS,
	}
	if lr := j.lastResp; lr != nil {
		resp.Budget = lr.Budget
		resp.Queries = lr.Queries
		resp.Target = lr.Target
	} else if j.rec.Request != nil {
		resp.Target = j.rec.Request.Target
	}
	return resp
}

// ErrHTTP maps a submit error to the API error shape (used by the
// server handler; kept here so the mapping lives next to the
// sentinels).
func ErrHTTP(err error) *api.Error {
	switch {
	case errors.Is(err, ErrQueueFull):
		return &api.Error{Code: http.StatusTooManyRequests, Msg: "job queue full, retry later", RetryAfterSeconds: 5}
	case errors.Is(err, ErrClosed):
		return &api.Error{Code: http.StatusServiceUnavailable, Msg: "server draining, jobs not accepted"}
	case errors.Is(err, ErrNotFound):
		return &api.Error{Code: http.StatusNotFound, Msg: "no such job"}
	}
	return &api.Error{Code: http.StatusInternalServerError, Msg: err.Error()}
}
