package jobs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/durable"
	"repro/internal/guard"
)

// recordExt is the job record file suffix; quarantineExt is what a
// corrupt record is renamed to (same name, so forensics can line the
// bad file up with the job ID that owned it).
const (
	recordExt     = ".bccjob"
	quarantineExt = ".corrupt"
)

// Store is the on-disk side of the subsystem: one bccjob/1 file per
// job in a flat directory. All methods are safe for concurrent use by
// the manager's workers — each job's record is only ever written by the
// goroutine currently running (or transitioning) that job, and the
// atomic rename makes readers immune to concurrent writes.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the job directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("jobs: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store directory: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// validID keeps record lookups inside the store directory: IDs are
// generated hex strings, and anything else (path separators, dots) is
// rejected before it can touch the filesystem.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+recordExt)
}

// Put persists a record, atomically and durably. The armed-fault hook
// jobs.store.append fires before the write; an armed panic is contained
// into the returned error so a chaos run degrades the one transition,
// never the worker goroutine.
func (s *Store) Put(r *Record) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("jobs: store append panicked: %v", p)
		}
	}()
	if !validID(r.ID) {
		return fmt.Errorf("jobs: invalid job id %q", r.ID)
	}
	guard.Inject("jobs.store.append")
	data, err := encodeRecord(r)
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(s.path(r.ID), data)
}

// Get reads one record. A missing job returns fs.ErrNotExist; a corrupt
// file returns *durable.FormatError.
func (s *Store) Get(id string) (*Record, error) {
	if !validID(id) {
		return nil, fs.ErrNotExist
	}
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, err
	}
	return decodeRecord(s.path(id), data)
}

// Delete removes a record (missing is not an error).
func (s *Store) Delete(id string) error {
	if !validID(id) {
		return nil
	}
	if err := os.Remove(s.path(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return durable.SyncDir(s.dir)
}

// ScanResult reports one directory scan: the readable records (sorted
// by creation time, oldest first, so resume order matches submit
// order), how many files were quarantined, and how many orphaned
// *.tmp leftovers from mid-write crashes were swept away.
type ScanResult struct {
	Records      []*Record
	Quarantined  int
	OrphansSwept int
}

// Scan reads every record in the store. Corrupt files — bad framing,
// bad checksum, semantic nonsense — are renamed to *.corrupt and
// counted, never fatal: one damaged record must not take down the
// store, and quarantining (rather than deleting) keeps the bytes for
// forensics while guaranteeing the next scan won't trip over them
// again.
func (s *Store) Scan() (ScanResult, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return ScanResult{}, err
	}
	var res ScanResult
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recordExt) {
			// Leftover temp files from a mid-write crash are harmless
			// (the rename never happened); sweep them, counted so the
			// crash frequency they imply stays visible in /v1/statz.
			if strings.Contains(name, recordExt+".tmp") {
				if os.Remove(filepath.Join(s.dir, name)) == nil {
					res.OrphansSwept++
				}
			}
			continue
		}
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue // unreadable now; the next scan may do better
		}
		rec, err := decodeRecord(path, data)
		if err != nil {
			var fe *durable.FormatError
			if errors.As(err, &fe) {
				_ = os.Rename(path, path+quarantineExt)
				res.Quarantined++
			}
			continue
		}
		res.Records = append(res.Records, rec)
	}
	sort.Slice(res.Records, func(i, j int) bool {
		if res.Records[i].CreatedUnixMS != res.Records[j].CreatedUnixMS {
			return res.Records[i].CreatedUnixMS < res.Records[j].CreatedUnixMS
		}
		return res.Records[i].ID < res.Records[j].ID
	})
	return res, nil
}
