package jobs

import (
	"flag"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/guard"
)

// jobsChaosFor is how long the chaos soak keeps crashing and restarting
// managers. CI passes 10s via `make jobs-smoke`; the default keeps
// plain `go test ./...` fast.
var jobsChaosFor = flag.Duration("jobs.chaos", 2*time.Second, "duration of the jobs chaos soak")

// everyNth panics on every n-th call — a deterministic fault that fires
// across goroutines without flakiness (same helper as the server's
// chaos harness).
func everyNth(n uint64, msg string) func() {
	var calls atomic.Uint64
	return func() {
		if calls.Add(1)%n == 0 {
			panic(msg)
		}
	}
}

// TestJobsChaosSoak is the acceptance soak for the durability contract:
// with faults armed at every jobs.* guard point and the manager
// repeatedly crash-stopped (no graceful drain) and reopened over the
// same directory, every job whose submit succeeded must end in a
// terminal state — completed, canceled or failed-with-reason — and the
// resumed counter must show warm restarts actually happened. No
// goroutine leaks, no torn records.
func TestJobsChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	dir := t.TempDir()
	baseline := runtime.NumGoroutine()

	guard.Arm("jobs.store.append", everyNth(13, "chaos: store append"))
	guard.Arm("jobs.checkpoint", everyNth(5, "chaos: checkpoint"))
	guard.Arm("jobs.resume", everyNth(7, "chaos: resume"))
	defer guard.DisarmAll()

	// The fake solver needs several slices per job so crashes land
	// mid-flight: ~25ms of work per unit toward 6 units.
	newSolver := func() *fakeSolver {
		return &fakeSolver{perSlice: 2, total: 6, sliceDur: 25 * time.Millisecond}
	}

	submitted := make(map[string]bool)
	var (
		submitFailures int
		generations    int
	)

	deadline := time.Now().Add(*jobsChaosFor)
	for time.Now().Before(deadline) {
		generations++
		m, err := Open(Config{
			Dir:                dir,
			Workers:            3,
			CheckpointInterval: 15 * time.Millisecond,
			DefaultDeadline:    30 * time.Second,
			Solve:              newSolver().solve,
		})
		if err != nil {
			t.Fatalf("generation %d: Open: %v", generations, err)
		}

		// Submit a burst; armed append faults will reject some — those
		// callers got an error and no ID, which is a contract-conform
		// outcome, not a lost job.
		for i := 0; i < 6; i++ {
			st, err := m.Submit(&api.JobRequest{}, "abcc", fmt.Sprintf("fp-%d-%d", generations, i))
			if err != nil {
				submitFailures++
				continue
			}
			submitted[st.ID] = true
		}
		// Cancel an occasional job to exercise that path too.
		if generations%3 == 0 {
			for id := range submitted {
				_, _ = m.Cancel(id)
				break
			}
		}

		// Let jobs make progress, then crash without warning.
		time.Sleep(80 * time.Millisecond)
		m.abort()
	}

	// Final generation: no faults, generous time — everything must
	// drain to a terminal state.
	guard.DisarmAll()
	final, err := Open(Config{
		Dir:                dir,
		Workers:            4,
		CheckpointInterval: 15 * time.Millisecond,
		DefaultDeadline:    30 * time.Second,
		Solve:              (&fakeSolver{perSlice: 6, total: 6}).solve,
	})
	if err != nil {
		t.Fatalf("final Open: %v", err)
	}
	for id := range submitted {
		st := awaitTerminal(t, final, id, 10*time.Second)
		switch st.State {
		case api.JobCompleted, api.JobCanceled:
		case api.JobFailed:
			if st.Error == "" {
				t.Errorf("job %s failed without a reason", id)
			}
		default:
			t.Errorf("job %s ended in non-terminal state %q", id, st.State)
		}
	}
	stats := final.Stats()
	if stats.Resumed == 0 {
		t.Error("bcc_jobs_resumed_total = 0 after crash/restart cycles")
	}
	final.Close()
	t.Logf("chaos: %d generations, %d jobs submitted, %d submit rejections, final stats %+v",
		generations, len(submitted), submitFailures, stats)

	// Re-scan the directory: no torn records may remain (quarantines,
	// if the crash timing produced any, were renamed aside and counted;
	// atomic writes should make them impossible).
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if scan.Quarantined != 0 {
		t.Errorf("%d torn record(s) after the soak; atomic writes should prevent any", scan.Quarantined)
	}
	for id := range submitted {
		found := false
		for _, rec := range scan.Records {
			if rec.ID == id {
				found = true
				if !api.JobTerminal(rec.State) {
					t.Errorf("job %s persisted in non-terminal state %q after drain", id, rec.State)
				}
				break
			}
		}
		if !found {
			t.Errorf("job %s silently vanished from the store", id)
		}
	}

	// Goroutine hygiene: all workers across all generations must be gone.
	leakDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseline)
}

func awaitTerminal(t *testing.T, m *Manager, id string, timeout time.Duration) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if api.JobTerminal(st.State) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s never reached a terminal state (last: %+v)", id, st)
	return nil
}
