package jobs

import (
	"bytes"
	"testing"

	"repro/internal/api"
)

// FuzzJobRecord hammers the bccjob/1 decoder the same way FuzzFromFormat
// hammers the dataset parser: arbitrary bytes must either decode into a
// record that re-encodes to an equivalent record, or fail cleanly —
// never panic, never return a half-valid record (empty ID, unknown
// state) that the store would then trust.
func FuzzJobRecord(f *testing.F) {
	seed := func(r *Record) {
		data, err := encodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	ach := true
	seed(&Record{ID: "0123456789abcdef", State: api.JobQueued, Algo: "abcc",
		Fingerprint: "fp", Request: &api.JobRequest{}, CreatedUnixMS: 1, DeadlineMS: 1000})
	seed(&Record{ID: "ffff0000ffff0000", State: api.JobRunning, Algo: "gmc3",
		Fingerprint: "fp", Request: &api.JobRequest{JobDeadlineMS: 5000}, Attempts: 2, Resumes: 1,
		Checkpoint: &Checkpoint{Status: "deadline", Utility: 3.5, Cost: 2, Covered: 7, Achieved: &ach,
			Classifiers: []api.PlanClassifier{{Props: []string{"a", "b"}, Cost: 2}}, Slices: 3, ElapsedMS: 1234}})
	seed(&Record{ID: "00aa11bb22cc33dd", State: api.JobCompleted, Algo: "abcc", Fingerprint: "fp",
		Result: &api.SolveResponse{Status: "complete", Utility: 9}})
	f.Add([]byte("bccjob/1 00000000 0\n"))
	f.Add([]byte("bccjob/2 deadbeef 4\nnope"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord("fuzz", data)
		if err != nil {
			return
		}
		if rec.ID == "" || !validStates[rec.State] {
			t.Fatalf("decoder accepted a half-valid record: %+v", rec)
		}
		re, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encoding a decoded record: %v", err)
		}
		rec2, err := decodeRecord("fuzz2", re)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded record: %v", err)
		}
		b1, _ := encodeRecord(rec2)
		if !bytes.Equal(re, b1) {
			t.Fatalf("encode/decode not idempotent:\n%q\n%q", re, b1)
		}
	})
}
