package jobs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/guard"
)

func testRecord(id string) *Record {
	return &Record{
		ID:            id,
		State:         api.JobQueued,
		Algo:          "abcc",
		Fingerprint:   "fp",
		Request:       &api.JobRequest{},
		CreatedUnixMS: 1,
		UpdatedUnixMS: 1,
		DeadlineMS:    1000,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("00aa11bb22cc33dd")
	rec.Checkpoint = &Checkpoint{Status: "deadline", Utility: 12.5, Slices: 2, ElapsedMS: 450}
	if err := s.Put(rec); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(rec.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.ID != rec.ID || got.State != rec.State || got.Checkpoint.Utility != 12.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := s.Get("ffffffffffffffff"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing job: err = %v, want fs.ErrNotExist", err)
	}
}

func TestStoreRejectsHostileIDs(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", "ABCDEF", "..", strings.Repeat("a", 65)} {
		if err := s.Put(testRecord(id)); err == nil {
			t.Errorf("Put(%q) accepted a hostile id", id)
		}
		if _, err := s.Get(id); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("Get(%q): err = %v, want fs.ErrNotExist", id, err)
		}
	}
}

func TestScanQuarantinesCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testRecord("00aa11bb22cc33dd")
	if err := s.Put(good); err != nil {
		t.Fatal(err)
	}
	// A torn record: valid name, garbage bytes.
	torn := filepath.Join(dir, "0123456789abcdef"+recordExt)
	if err := os.WriteFile(torn, []byte("bccjob/1 00000000 999\n{"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from a mid-write crash.
	tmp := filepath.Join(dir, "deadbeef"+recordExt+".tmp123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := s.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(res.Records) != 1 || res.Records[0].ID != good.ID {
		t.Fatalf("Scan records = %+v, want just %s", res.Records, good.ID)
	}
	if res.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", res.Quarantined)
	}
	if res.OrphansSwept != 1 {
		t.Fatalf("OrphansSwept = %d, want 1", res.OrphansSwept)
	}
	if _, err := os.Stat(torn + quarantineExt); err != nil {
		t.Errorf("corrupt record was not renamed aside: %v", err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("temp litter survived the scan: %v", err)
	}

	// A second scan must be idempotent: the quarantined file stays aside.
	res2, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Quarantined != 0 || res2.OrphansSwept != 0 || len(res2.Records) != 1 {
		t.Fatalf("second Scan = %+v, want clean", res2)
	}
}

func TestPutContainsArmedFault(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	guard.Arm("jobs.store.append", guard.PanicFault("boom"))
	defer guard.DisarmAll()
	if err := s.Put(testRecord("00aa11bb22cc33dd")); err == nil {
		t.Fatal("Put succeeded under an armed append fault")
	}
	// The fault fired before the write: nothing must be on disk.
	if _, err := s.Get("00aa11bb22cc33dd"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("faulted Put left a record behind: %v", err)
	}
}
