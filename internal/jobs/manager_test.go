package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// fakeSolver mimics an anytime solver: each slice makes `perSlice`
// utility of progress on top of the warm-start checkpoint, completing
// once utility reaches `total`. It cooperates with the slice deadline
// the way real solvers do (returns status deadline when ctx expires
// first).
type fakeSolver struct {
	perSlice float64
	total    float64
	sliceDur time.Duration // simulated work per slice
	calls    atomic.Int64
	fail     atomic.Bool // next slice returns an error
}

func (f *fakeSolver) solve(ctx context.Context, req *api.JobRequest, cp *Checkpoint) (*api.SolveResponse, error) {
	f.calls.Add(1)
	if f.fail.Load() {
		return nil, errors.New("synthetic solver failure")
	}
	util := 0.0
	if cp != nil {
		util = cp.Utility // warm start: never below the incumbent
	}
	deadline, _ := ctx.Deadline()
	for util < f.total {
		if f.sliceDur > 0 {
			select {
			case <-ctx.Done():
				return &api.SolveResponse{Status: "deadline", Utility: util, Cost: util}, nil
			case <-time.After(f.sliceDur):
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return &api.SolveResponse{Status: "deadline", Utility: util, Cost: util}, nil
		}
		util += f.perSlice
	}
	return &api.SolveResponse{Status: "complete", Utility: f.total, Cost: f.total}, nil
}

func openTestManager(t *testing.T, dir string, f *fakeSolver, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Dir:                dir,
		Workers:            2,
		CheckpointInterval: 20 * time.Millisecond,
		DefaultDeadline:    5 * time.Second,
		Solve:              f.solve,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

func awaitState(t *testing.T, m *Manager, id string, want string, timeout time.Duration) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s never reached %q (last: %+v)", id, want, st)
	return nil
}

// TestOpenCountsCorruptAndOrphanFiles pins the startup hygiene
// accounting: a corrupt record and an orphaned tmp in the store dir
// must surface in Stats (and through it /v1/statz and the
// bcc_jobs_corrupt_total / bcc_jobs_orphan_swept_total counters), not
// vanish silently.
func TestOpenCountsCorruptAndOrphanFiles(t *testing.T) {
	dir := t.TempDir()
	writeJunk := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJunk("0123456789abcdef"+recordExt, "bccjob/1 00000000 999\n{")
	writeJunk("deadbeef"+recordExt+".tmp42", "partial")

	m := openTestManager(t, dir, &fakeSolver{perSlice: 1, total: 1}, nil)
	defer m.Close()
	st := m.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.OrphansSwept != 1 {
		t.Errorf("OrphansSwept = %d, want 1", st.OrphansSwept)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	f := &fakeSolver{perSlice: 10, total: 10}
	m := openTestManager(t, t.TempDir(), f, nil)
	defer m.Close()

	st, err := m.Submit(&api.JobRequest{}, "abcc", "fp1")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := awaitState(t, m, st.ID, api.JobCompleted, 2*time.Second)
	if done.Progress == nil || done.Progress.Utility != 10 {
		t.Fatalf("Progress = %+v, want utility 10", done.Progress)
	}
	resp, _, err := m.Result(st.ID)
	if err != nil || resp == nil {
		t.Fatalf("Result: %v / %v", resp, err)
	}
	if resp.Utility != 10 || resp.Status != "complete" {
		t.Fatalf("Result = %+v", resp)
	}
	if got := m.Stats().Completed; got != 1 {
		t.Fatalf("Stats.Completed = %d, want 1", got)
	}
}

func TestJobCheckpointsAcrossSlices(t *testing.T) {
	// 3 utility per slice of ~20ms toward 12: needs multiple slices.
	f := &fakeSolver{perSlice: 3, total: 12, sliceDur: 25 * time.Millisecond}
	m := openTestManager(t, t.TempDir(), f, nil)
	defer m.Close()

	st, err := m.Submit(&api.JobRequest{}, "abcc", "fp1")
	if err != nil {
		t.Fatal(err)
	}
	done := awaitState(t, m, st.ID, api.JobCompleted, 5*time.Second)
	if done.Progress.Slices < 2 {
		t.Fatalf("Slices = %d, want >= 2 (doubling slices)", done.Progress.Slices)
	}
	if m.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoints recorded")
	}
}

func TestGracefulCloseRequeuesAndResumeCompletes(t *testing.T) {
	dir := t.TempDir()
	f := &fakeSolver{perSlice: 2, total: 20, sliceDur: 30 * time.Millisecond}
	m := openTestManager(t, dir, f, nil)

	st, err := m.Submit(&api.JobRequest{}, "abcc", "fp1")
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then drain.
	time.Sleep(60 * time.Millisecond)
	m.Close()

	rec, err := m.store.Get(st.ID)
	if err != nil {
		t.Fatalf("record after Close: %v", err)
	}
	if api.JobTerminal(rec.State) {
		t.Fatalf("job finished too fast for the test (state %s); slow the fake solver", rec.State)
	}
	if rec.State != api.JobQueued {
		t.Fatalf("state after graceful Close = %q, want queued", rec.State)
	}

	// Reopen: the job must resume from its checkpoint and finish.
	f2 := &fakeSolver{perSlice: 20, total: 20}
	m2 := openTestManager(t, dir, f2, nil)
	defer m2.Close()
	done := awaitState(t, m2, st.ID, api.JobCompleted, 5*time.Second)
	if done.Resumes < 1 {
		t.Fatalf("Resumes = %d, want >= 1", done.Resumes)
	}
	if m2.Stats().Resumed == 0 {
		t.Fatal("resumed counter = 0 after a resume")
	}
}

func TestCrashResumeFromRunningRecord(t *testing.T) {
	dir := t.TempDir()
	f := &fakeSolver{perSlice: 1, total: 100, sliceDur: 20 * time.Millisecond}
	m := openTestManager(t, dir, f, nil)

	st, err := m.Submit(&api.JobRequest{}, "abcc", "fp1")
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, m, st.ID, api.JobRunning, 2*time.Second)
	time.Sleep(50 * time.Millisecond)
	m.abort() // simulated SIGKILL: no graceful requeue write

	rec, err := m.store.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != api.JobRunning {
		t.Fatalf("state on disk after crash = %q, want running", rec.State)
	}

	f2 := &fakeSolver{perSlice: 100, total: 100}
	m2 := openTestManager(t, dir, f2, nil)
	defer m2.Close()
	done := awaitState(t, m2, st.ID, api.JobCompleted, 5*time.Second)
	if done.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", done.Resumes)
	}
	resp, _, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Utility != 100 {
		t.Fatalf("resumed result utility = %v, want 100", resp.Utility)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	f := &fakeSolver{perSlice: 1, total: 1000, sliceDur: 20 * time.Millisecond}
	m := openTestManager(t, t.TempDir(), f, func(c *Config) { c.Workers = 1 })
	defer m.Close()

	// Occupy the single worker.
	running, err := m.Submit(&api.JobRequest{}, "abcc", "fp1")
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, m, running.ID, api.JobRunning, 2*time.Second)

	// This one stays queued behind it.
	queued, err := m.Submit(&api.JobRequest{}, "abcc", "fp2")
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCanceled {
		t.Fatalf("canceled queued job state = %q", st.State)
	}

	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	awaitState(t, m, running.ID, api.JobCanceled, 2*time.Second)

	// Canceling a terminal job is a no-op.
	st2, err := m.Cancel(running.ID)
	if err != nil || st2.State != api.JobCanceled {
		t.Fatalf("re-cancel: %+v / %v", st2, err)
	}
	if got := m.Stats().Canceled; got != 2 {
		t.Fatalf("Stats.Canceled = %d, want 2", got)
	}
}

func TestFailedSolveFailsJobWithReason(t *testing.T) {
	f := &fakeSolver{perSlice: 1, total: 10}
	f.fail.Store(true)
	m := openTestManager(t, t.TempDir(), f, nil)
	defer m.Close()

	st, err := m.Submit(&api.JobRequest{}, "abcc", "fp1")
	if err != nil {
		t.Fatal(err)
	}
	done := awaitState(t, m, st.ID, api.JobFailed, 2*time.Second)
	if done.Error == "" {
		t.Fatal("failed job carries no reason")
	}
	if _, _, err := m.Result(st.ID); err != nil {
		t.Fatalf("Result on failed job: %v", err)
	}
}

func TestSubmitQueueFull(t *testing.T) {
	f := &fakeSolver{perSlice: 1, total: 1000, sliceDur: 50 * time.Millisecond}
	m := openTestManager(t, t.TempDir(), f, func(c *Config) { c.Workers = 1; c.MaxJobs = 2 })
	defer m.Close()

	var lastErr error
	for i := 0; i < 4; i++ {
		_, lastErr = m.Submit(&api.JobRequest{}, "abcc", fmt.Sprintf("fp%d", i))
	}
	if !errors.Is(lastErr, ErrQueueFull) {
		t.Fatalf("4th submit err = %v, want ErrQueueFull", lastErr)
	}
	if he := ErrHTTP(lastErr); he.Code != 429 {
		t.Fatalf("ErrHTTP(queue full).Code = %d, want 429", he.Code)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	f := &fakeSolver{perSlice: 1, total: 1}
	m := openTestManager(t, t.TempDir(), f, nil)
	m.Close()
	if _, err := m.Submit(&api.JobRequest{}, "abcc", "fp"); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if _, err := m.Get("0123456789abcdef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: %v, want ErrNotFound", err)
	}
}
