// Package jobs is the durable async solve-job subsystem: a crash-safe
// on-disk job store (versioned bccjob/1 records under one directory,
// written through internal/durable's atomic, power-loss-safe writer)
// plus a bounded worker pool that runs each job as a sequence of
// checkpointed anytime solve slices and resumes incomplete jobs from
// their last checkpoint after a restart.
//
// Lifecycle:
//
//	queued → running → completed | failed | canceled
//	   ↑        │
//	   └────────┘  (crash / drain: the persisted record is requeued at
//	               the next Open, warm-started from its checkpoint)
//
// Durability contract: a successful Submit means the job's record is on
// disk — from then on the job can only end in a terminal state, never
// vanish. Checkpoint writes are best-effort (a failed write degrades
// resume granularity, not correctness); the one write that gates an
// API answer is the submit append itself. Corrupt records found at
// startup are quarantined (renamed *.corrupt), never fatal.
package jobs

import (
	"encoding/json"
	"fmt"

	"repro/internal/api"
	"repro/internal/durable"
)

// RecordFormat is the job record version tag. A record file is the
// shared framed-record format of internal/durable: one ASCII header
// line "bccjob/1 <crc32c-hex> <body-length>\n" followed by exactly
// body-length bytes of JSON (the Record below).
const RecordFormat = "bccjob/1"

// Checkpoint is the persisted incumbent of a job: everything a resumed
// run needs to warm-start the solver and everything a status response
// needs to report anytime progress.
type Checkpoint struct {
	// Status is the anytime status of the slice that produced the
	// incumbent (deadline for a truncated slice, complete/recovered for
	// the final one).
	Status string `json:"status"`
	// Utility/Cost/Covered describe the incumbent plan.
	Utility float64 `json:"utility"`
	Cost    float64 `json:"cost"`
	Covered int     `json:"covered"`
	// Achieved is set for algo=gmc3.
	Achieved *bool `json:"achieved,omitempty"`
	// Classifiers is the incumbent plan itself — the warm-start seed.
	Classifiers []api.PlanClassifier `json:"classifiers,omitempty"`
	// Slices counts the solve slices completed so far.
	Slices int `json:"slices"`
	// ElapsedMS is the cumulative solve wall-clock across slices (and
	// across restarts), charged against the job deadline.
	ElapsedMS float64 `json:"elapsed_ms"`
	// SavedUnixMS is when this checkpoint was produced.
	SavedUnixMS int64 `json:"saved_unix_ms"`
}

// Record is the JSON body of a bccjob/1 file: one job's full durable
// state. Every transition rewrites the whole record atomically — the
// file is small (the request plus at most one plan), and whole-record
// rewrites mean a reader never has to replay a log.
type Record struct {
	ID    string `json:"id"`
	State string `json:"state"` // api.JobQueued … api.JobCanceled
	// Algo and Fingerprint are denormalized from the request at submit
	// (after validation) so scans and status answers don't re-parse the
	// instance.
	Algo        string `json:"algo"`
	Fingerprint string `json:"fingerprint"`
	// Request is the original submission, kept verbatim so a resumed or
	// resubmitted run solves exactly what the caller asked.
	Request       *api.JobRequest `json:"request"`
	CreatedUnixMS int64           `json:"created_unix_ms"`
	UpdatedUnixMS int64           `json:"updated_unix_ms"`
	// DeadlineMS is the job's total solve budget in wall-clock
	// milliseconds, across all slices and resumes.
	DeadlineMS int64 `json:"deadline_ms"`
	// Attempts counts run starts (1 + Resumes); Resumes counts requeues
	// of a persisted record after a crash or drain.
	Attempts int `json:"attempts,omitempty"`
	Resumes  int `json:"resumes,omitempty"`
	// Checkpoint is the last persisted incumbent, nil before the first
	// slice finishes.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
	// Result is set on state=completed.
	Result *api.SolveResponse `json:"result,omitempty"`
	// Error is set on state=failed (and optionally canceled).
	Error string `json:"error,omitempty"`
}

// validStates guards decoding: a record claiming an unknown state is
// corrupt, whatever its checksum says.
var validStates = map[string]bool{
	api.JobQueued: true, api.JobRunning: true,
	api.JobCompleted: true, api.JobFailed: true, api.JobCanceled: true,
}

// encodeRecord frames a record as a bccjob/1 file image.
func encodeRecord(r *Record) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding record %s: %w", r.ID, err)
	}
	return durable.EncodeRecord(RecordFormat, body), nil
}

// decodeRecord validates and parses a bccjob/1 file image. Framing
// damage and semantic nonsense (no ID, unknown state, missing request
// on a non-terminal record) both come back as *durable.FormatError so
// the store's scan quarantines them uniformly.
func decodeRecord(path string, data []byte) (*Record, error) {
	body, err := durable.DecodeRecord(RecordFormat, path, data)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, &durable.FormatError{Path: path, Reason: fmt.Sprintf("decoding body: %v", err)}
	}
	if r.ID == "" {
		return nil, &durable.FormatError{Path: path, Reason: "record has no id"}
	}
	if !validStates[r.State] {
		return nil, &durable.FormatError{Path: path, Reason: fmt.Sprintf("unknown state %q", r.State)}
	}
	if r.Request == nil && !api.JobTerminal(r.State) {
		return nil, &durable.FormatError{Path: path, Reason: "non-terminal record has no request"}
	}
	return &r, nil
}

// Status renders the record as the wire-level JobStatus (without the
// gateway-only fields).
func (r *Record) Status() *api.JobStatus {
	st := &api.JobStatus{
		ID:            r.ID,
		State:         r.State,
		Stage:         r.stage(),
		Algo:          r.Algo,
		Fingerprint:   r.Fingerprint,
		CreatedUnixMS: r.CreatedUnixMS,
		UpdatedUnixMS: r.UpdatedUnixMS,
		Attempts:      r.Attempts,
		Resumes:       r.Resumes,
		Error:         r.Error,
	}
	if cp := r.Checkpoint; cp != nil {
		st.Progress = &api.JobProgress{
			Slices:           cp.Slices,
			ElapsedMS:        cp.ElapsedMS,
			Status:           cp.Status,
			Utility:          cp.Utility,
			Cost:             cp.Cost,
			Covered:          cp.Covered,
			Achieved:         cp.Achieved,
			CheckpointUnixMS: cp.SavedUnixMS,
		}
	}
	return st
}

// stage is the human-oriented phase label in status responses.
func (r *Record) stage() string {
	switch r.State {
	case api.JobRunning:
		if cp := r.Checkpoint; cp != nil {
			return fmt.Sprintf("solving (slice %d)", cp.Slices+1)
		}
		return "solving (slice 1)"
	case api.JobQueued:
		if r.Resumes > 0 {
			return "requeued after restart"
		}
	}
	return r.State
}
