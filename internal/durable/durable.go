// Package durable is the shared crash-safe persistence layer under the
// bccsnap/1 cache snapshots and the bccjob/1 job records: one atomic
// file writer and one framed-record codec, so every on-disk format in
// the system detects truncation, bit rot and torn writes the same way.
//
// The file layout is a single ASCII header line
//
//	<format-tag> <crc32c-hex> <body-length>\n
//
// followed by exactly body-length bytes of payload. The checksum
// (CRC-32/Castagnoli over the body) plus the explicit length make a
// reader reject anything that is not a complete, untouched record.
//
// WriteFileAtomic writes a temp file in the target's directory, fsyncs
// it, renames it into place, and then fsyncs the directory itself. The
// directory fsync is what upgrades the guarantee from "survives a
// process crash" to "survives power loss": without it, the rename may
// still sit only in the directory's in-memory metadata when the machine
// dies, and the file comes back missing even though its bytes were
// durable.
package durable

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// castagnoli is the CRC-32/Castagnoli table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FormatError reports a framed record that cannot be trusted: wrong
// version tag, bad checksum, truncated body, or a malformed header. It
// is a distinct type so callers can treat "corrupt record" (quarantine,
// log, start cold) differently from I/O errors.
type FormatError struct {
	Path   string
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("durable: record %s: %s", e.Path, e.Reason)
}

// EncodeRecord frames body under the given format tag: header line plus
// payload, ready for WriteFileAtomic.
func EncodeRecord(format string, body []byte) []byte {
	header := fmt.Sprintf("%s %08x %d\n", format, crc32.Checksum(body, castagnoli), len(body))
	out := make([]byte, 0, len(header)+len(body))
	out = append(out, header...)
	out = append(out, body...)
	return out
}

// DecodeRecord validates a framed record against the expected format
// tag and returns its body. Anything untrustworthy — missing header,
// version mismatch, length mismatch, checksum failure — comes back as a
// *FormatError naming path (used only for error text).
func DecodeRecord(format, path string, data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, &FormatError{Path: path, Reason: "missing header line"}
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("malformed header %q", string(data[:nl]))}
	}
	if fields[0] != format {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("version %q, want %q", fields[0], format)}
	}
	wantCRC, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("bad checksum field %q", fields[1])}
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("bad length field %q", fields[2])}
	}
	body := data[nl+1:]
	if len(body) != wantLen {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("body is %d bytes, header says %d (truncated?)", len(body), wantLen)}
	}
	if got := crc32.Checksum(body, castagnoli); got != uint32(wantCRC) {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("checksum %08x, header says %08x", got, uint32(wantCRC))}
	}
	return body, nil
}

// WriteFileAtomic writes data to path so that readers (and crash
// recovery) only ever see the old content or the complete new content:
// temp file in the same directory, fsync, rename into place, fsync the
// directory. A failure at any step leaves the previous file intact.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames and unlinks inside it
// durable against power loss. Filesystems that refuse to fsync a
// directory handle (some network or FUSE mounts) degrade to the
// rename-only guarantee rather than failing the write.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

// isSyncUnsupported reports fsync errors that mean "this filesystem
// cannot sync a directory" rather than "your data did not land".
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EBADF)
}
