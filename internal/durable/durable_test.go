package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	body := []byte(`{"hello":"world"}`)
	framed := EncodeRecord("bccjob/1", body)
	got, err := DecodeRecord("bccjob/1", "x", framed)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if string(got) != string(body) {
		t.Fatalf("body = %q, want %q", got, body)
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	body := []byte(`{"n":42}`)
	good := EncodeRecord("bccjob/1", body)

	cases := map[string][]byte{
		"empty":          {},
		"no header":      []byte("garbage with no newline"),
		"short header":   []byte("bccjob/1 deadbeef\nx"),
		"wrong version":  EncodeRecord("bccjob/2", body),
		"truncated body": good[:len(good)-3],
		"flipped bit":    flip(good, len(good)-1),
		"bad crc field":  []byte("bccjob/1 zzzzzzzz 8\n{\"n\":42}"),
		"bad len field":  []byte("bccjob/1 00000000 -1\n{\"n\":42}"),
		"appended bytes": append(append([]byte{}, good...), "extra"...),
	}
	for name, data := range cases {
		if _, err := DecodeRecord("bccjob/1", "x", data); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Errorf("%s: err = %v, want *FormatError", name, err)
			}
		}
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x40
	return out
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatalf("WriteFileAtomic overwrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "two" {
		t.Fatalf("content = %q, want %q", got, "two")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1 (temp files must be cleaned up)", len(entries))
	}
}
