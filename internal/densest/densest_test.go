package densest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wgraph"
)

// bruteRatio finds the optimal ratio by enumerating all non-empty subsets.
func bruteRatio(g *wgraph.Graph) float64 {
	n := g.NumNodes()
	best := 0.0
	var nodes []int
	for mask := 1; mask < 1<<n; mask++ {
		nodes = nodes[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				nodes = append(nodes, v)
			}
		}
		r := ratio(g.InducedWeightOf(nodes), g.TotalCost(nodes))
		if r > best {
			best = r
		}
	}
	return best
}

func TestExactSimple(t *testing.T) {
	// Triangle with cheap nodes vs a heavy but expensive pair.
	g := wgraph.New(5)
	for v := 0; v < 3; v++ {
		g.SetCost(v, 1)
	}
	g.SetCost(3, 50)
	g.SetCost(4, 50)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	g.AddEdge(0, 2, 4)
	g.AddEdge(3, 4, 30)
	res := ExactGraph(g)
	if math.Abs(res.Ratio-4) > 1e-9 { // triangle: 12/3 = 4 vs pair 30/100
		t.Fatalf("Ratio = %v, want 4", res.Ratio)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(8)
		g := wgraph.New(n)
		for v := 0; v < n; v++ {
			g.SetCost(v, float64(1+rng.Intn(9)))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.45 {
					g.AddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
		}
		if g.NumEdges() == 0 {
			continue
		}
		got := ExactGraph(g)
		want := bruteRatio(g)
		if math.Abs(got.Ratio-want) > 1e-6 {
			t.Fatalf("trial %d: exact ratio %v != brute %v", trial, got.Ratio, want)
		}
	}
}

func TestExactWithZeroCostAnchor(t *testing.T) {
	// ECC-style v* anchor: singleton query edges to a zero-cost vertex.
	g := wgraph.New(3)
	g.SetCost(0, 0) // v*
	g.SetCost(1, 2)
	g.SetCost(2, 10)
	g.AddEdge(0, 1, 6) // singleton query of utility 6 for classifier 1
	g.AddEdge(0, 2, 5)
	res := ExactGraph(g)
	if math.Abs(res.Ratio-3) > 1e-9 { // {v*, 1}: 6/2 = 3
		t.Fatalf("Ratio = %v, want 3", res.Ratio)
	}
}

func TestExactInfiniteRatio(t *testing.T) {
	g := wgraph.New(2)
	g.SetCost(0, 0)
	g.SetCost(1, 0)
	g.AddEdge(0, 1, 5)
	res := ExactGraph(g)
	if !math.IsInf(res.Ratio, 1) {
		t.Fatalf("zero-cost positive-weight set must have ratio +Inf, got %v", res.Ratio)
	}
}

func TestExactEmpty(t *testing.T) {
	res := ExactGraph(wgraph.New(0))
	if res.Ratio != 0 {
		t.Fatalf("empty graph ratio %v", res.Ratio)
	}
}

func TestPeelGraphCase(t *testing.T) {
	// Peeling on a plain graph (hyperedges of size 2) should find the
	// clearly densest core.
	h := Hypergraph{
		NodeCost: []float64{1, 1, 1, 10},
		Edges: []HEdge{
			{Nodes: []int{0, 1}, W: 5},
			{Nodes: []int{1, 2}, W: 5},
			{Nodes: []int{0, 2}, W: 5},
			{Nodes: []int{2, 3}, W: 1},
		},
	}
	res := PeelHypergraph(h)
	if math.Abs(res.Ratio-5) > 1e-9 { // triangle 15/3
		t.Fatalf("Ratio = %v, want 5 (%v)", res.Ratio, res.Nodes)
	}
}

func TestPeelHyperedges(t *testing.T) {
	h := Hypergraph{
		NodeCost: []float64{1, 1, 1, 5, 5, 5},
		Edges: []HEdge{
			{Nodes: []int{0, 1, 2}, W: 9},
			{Nodes: []int{3, 4, 5}, W: 9},
		},
	}
	res := PeelHypergraph(h)
	if math.Abs(res.Ratio-3) > 1e-9 { // cheap triple: 9/3
		t.Fatalf("Ratio = %v, want 3 (%v)", res.Ratio, res.Nodes)
	}
}

func TestPeelWithinFactorOfExact(t *testing.T) {
	// On graphs (r = 2), peeling must be within factor 2 of the exact
	// ratio; typically much closer.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(8)
		g := wgraph.New(n)
		h := Hypergraph{NodeCost: make([]float64, n)}
		for v := 0; v < n; v++ {
			c := float64(1 + rng.Intn(9))
			g.SetCost(v, c)
			h.NodeCost[v] = c
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					w := float64(1 + rng.Intn(9))
					g.AddEdge(u, v, w)
					h.Edges = append(h.Edges, HEdge{Nodes: []int{u, v}, W: w})
				}
			}
		}
		if len(h.Edges) == 0 {
			continue
		}
		peel := PeelHypergraph(h)
		opt := bruteRatio(g)
		if peel.Ratio < opt/2-1e-9 {
			t.Fatalf("trial %d: peel ratio %v below half of optimal %v",
				trial, peel.Ratio, opt)
		}
		if peel.Ratio > opt+1e-9 {
			t.Fatalf("trial %d: peel ratio %v exceeds optimal %v (bug)",
				trial, peel.Ratio, opt)
		}
	}
}

func TestPeelZeroCostNodeKeptLast(t *testing.T) {
	h := Hypergraph{
		NodeCost: []float64{0, 1},
		Edges:    []HEdge{{Nodes: []int{0, 1}, W: 4}},
	}
	res := PeelHypergraph(h)
	if math.Abs(res.Ratio-4) > 1e-9 {
		t.Fatalf("Ratio = %v, want 4", res.Ratio)
	}
}

func BenchmarkExactGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 150
	g := wgraph.New(n)
	for v := 0; v < n; v++ {
		g.SetCost(v, float64(1+rng.Intn(20)))
	}
	for i := 0; i < 800; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdgeMerged(u, v, float64(1+rng.Intn(10)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExactGraph(g)
	}
}

func BenchmarkPeelHypergraph(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 2000
	h := Hypergraph{NodeCost: make([]float64, n)}
	for v := 0; v < n; v++ {
		h.NodeCost[v] = float64(1 + rng.Intn(20))
	}
	for i := 0; i < 10000; i++ {
		sz := 2 + rng.Intn(2)
		nodes := make([]int, sz)
		for j := range nodes {
			nodes[j] = rng.Intn(n)
		}
		h.Edges = append(h.Edges, HEdge{Nodes: nodes, W: float64(1 + rng.Intn(10))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PeelHypergraph(h)
	}
}
