// Package densest implements Densest Subgraph (DS) solvers: find a node
// set maximizing the ratio of induced edge weight to total node cost.
//
// This is the substrate of the ECC algorithm (Theorem 5.4 of the paper):
// maximizing utility-per-cost of a classifier set reduces to DS on a graph
// whose nodes are singleton classifiers (weight = cost), whose edges are
// length-2 queries (weight = utility), with a zero-cost vertex v* anchoring
// singleton queries. DS is solvable exactly in polynomial time even on
// hypergraphs [35]; we provide:
//
//   - ExactGraph: exact solver on graphs via Dinkelbach iteration, each
//     step one min-cut on the classic densest-subgraph network;
//   - PeelHypergraph: the greedy peeling r-approximation (r = max
//     hyperedge cardinality), the variant the paper's experiments used.
package densest

import (
	"container/heap"
	"math"

	"repro/internal/maxflow"
	"repro/internal/wgraph"
)

// Result is a solved DS instance: the chosen nodes, their edge weight,
// node cost, and ratio (weight/cost; +Inf if cost is 0 and weight > 0).
type Result struct {
	Nodes  []int
	Weight float64
	Cost   float64
	Ratio  float64
}

func ratio(w, c float64) float64 {
	if c <= 0 {
		if w > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return w / c
}

// ExactGraph maximizes induced-edge-weight / node-cost over non-empty
// subsets, using Dinkelbach iterations: given a guess λ, a min-cut on the
// network s→e (cap w_e), e→endpoints (∞), v→t (cap λ·c(v)) decides whether
// some S achieves w(S) − λ·c(S) > 0 and yields the maximizing S. Each
// iteration strictly increases λ; convergence is finite.
func ExactGraph(g *wgraph.Graph) Result {
	n := g.NumNodes()
	if n == 0 || g.NumEdges() == 0 {
		return Result{}
	}
	// Zero-cost components with positive weight have infinite ratio.
	if res, inf := infiniteRatioSet(g); inf {
		return res
	}

	best := greedySeed(g)
	for iter := 0; iter < 100; iter++ {
		lambda := best.Ratio
		S, val := maxCutSet(g, lambda)
		if val <= 1e-9 || len(S) == 0 {
			break
		}
		cand := evaluate(g, S)
		if cand.Ratio <= best.Ratio+1e-12 {
			break
		}
		best = cand
	}
	return best
}

// infiniteRatioSet looks for a set of only zero-cost nodes carrying
// positive edge weight.
func infiniteRatioSet(g *wgraph.Graph) (Result, bool) {
	n := g.NumNodes()
	zero := make([]bool, n)
	for v := 0; v < n; v++ {
		zero[v] = g.Cost(v) == 0
	}
	var nodes []int
	var w float64
	for _, e := range g.Edges() {
		if zero[e.U] && zero[e.V] && e.W > 0 {
			w += e.W
			nodes = append(nodes, e.U, e.V)
		}
	}
	if w <= 0 {
		return Result{}, false
	}
	seen := map[int]bool{}
	var uniq []int
	for _, v := range nodes {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	return Result{Nodes: uniq, Weight: w, Cost: 0, Ratio: math.Inf(1)}, true
}

// greedySeed produces a positive-ratio starting point: the best
// single-edge set, or the full graph.
func greedySeed(g *wgraph.Graph) Result {
	n := g.NumNodes()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	best := evaluate(g, all)
	for _, e := range g.Edges() {
		cand := evaluate(g, []int{e.U, e.V})
		if cand.Ratio > best.Ratio {
			best = cand
		}
	}
	return best
}

// maxCutSet returns the node set S maximizing w(S) − λ·c(S) and the
// achieved value, via one min-cut.
func maxCutSet(g *wgraph.Graph, lambda float64) ([]int, float64) {
	n := g.NumNodes()
	m := g.NumEdges()
	src, snk := 0, 1
	edgeNode := func(i int) int { return 2 + i }
	nodeNode := func(v int) int { return 2 + m + v }
	f := maxflow.New(2 + m + n)
	var totalW float64
	for i, e := range g.Edges() {
		f.AddEdge(src, edgeNode(i), e.W)
		f.AddEdge(edgeNode(i), nodeNode(e.U), math.Inf(1))
		f.AddEdge(edgeNode(i), nodeNode(e.V), math.Inf(1))
		totalW += e.W
	}
	for v := 0; v < n; v++ {
		f.AddEdge(nodeNode(v), snk, lambda*g.Cost(v))
	}
	cut := f.MaxFlow(src, snk)
	side := f.MinCut(src)
	var S []int
	for v := 0; v < n; v++ {
		if side[nodeNode(v)] {
			S = append(S, v)
		}
	}
	return S, totalW - cut
}

func evaluate(g *wgraph.Graph, nodes []int) Result {
	w := g.InducedWeightOf(nodes)
	c := g.TotalCost(nodes)
	return Result{Nodes: nodes, Weight: w, Cost: c, Ratio: ratio(w, c)}
}

// HEdge is a weighted hyperedge over node indices.
type HEdge struct {
	Nodes []int
	W     float64
}

// Hypergraph is a node-costed, hyperedge-weighted hypergraph for
// PeelHypergraph. Build it directly; the zero value with populated slices
// is valid.
type Hypergraph struct {
	NodeCost []float64
	Edges    []HEdge
}

// PeelHypergraph runs the greedy peeling approximation for densest
// subhypergraph with node costs: repeatedly remove the node with the
// smallest incident-weight-to-cost ratio, tracking the best ratio among all
// suffixes. The approximation factor is the maximum hyperedge cardinality.
func PeelHypergraph(h Hypergraph) Result {
	n := len(h.NodeCost)
	if n == 0 || len(h.Edges) == 0 {
		return Result{}
	}
	const eps = 1e-12
	alive := make([]bool, n)
	incident := make([][]int, n)
	deg := make([]float64, n)
	edgeAlive := make([]bool, len(h.Edges))
	var totalW, totalC float64
	for v := 0; v < n; v++ {
		alive[v] = true
		totalC += h.NodeCost[v]
	}
	for i, e := range h.Edges {
		edgeAlive[i] = true
		totalW += e.W
		for _, v := range e.Nodes {
			incident[v] = append(incident[v], i)
			deg[v] += e.W
		}
	}
	key := func(v int) float64 { return deg[v] / math.Max(h.NodeCost[v], eps) }

	pq := &peelHeap{}
	heap.Init(pq)
	for v := 0; v < n; v++ {
		heap.Push(pq, peelItem{v, key(v)})
	}

	bestRatio := ratio(totalW, totalC)
	bestAlive := append([]bool(nil), alive...)
	remaining := n
	for remaining > 1 {
		var v int
		for {
			it := heap.Pop(pq).(peelItem)
			if !alive[it.v] {
				continue
			}
			if it.key > key(it.v)+eps {
				heap.Push(pq, peelItem{it.v, key(it.v)})
				continue
			}
			v = it.v
			break
		}
		alive[v] = false
		remaining--
		totalC -= h.NodeCost[v]
		for _, ei := range incident[v] {
			if !edgeAlive[ei] {
				continue
			}
			edgeAlive[ei] = false
			e := h.Edges[ei]
			totalW -= e.W
			for _, u := range e.Nodes {
				if alive[u] {
					deg[u] -= e.W
					heap.Push(pq, peelItem{u, key(u)})
				}
			}
		}
		if r := ratio(totalW, totalC); r > bestRatio {
			bestRatio = r
			copy(bestAlive, alive)
		}
	}

	var nodes []int
	for v := 0; v < n; v++ {
		if bestAlive[v] {
			nodes = append(nodes, v)
		}
	}
	// Recompute exact weight/cost of the kept set.
	in := map[int]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	var w, c float64
	for _, v := range nodes {
		c += h.NodeCost[v]
	}
	for _, e := range h.Edges {
		ok := true
		for _, v := range e.Nodes {
			if !in[v] {
				ok = false
				break
			}
		}
		if ok {
			w += e.W
		}
	}
	return Result{Nodes: nodes, Weight: w, Cost: c, Ratio: ratio(w, c)}
}

type peelItem struct {
	v   int
	key float64
}

type peelHeap []peelItem

func (h peelHeap) Len() int           { return len(h) }
func (h peelHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h peelHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *peelHeap) Push(x interface{}) {
	*h = append(*h, x.(peelItem))
}
func (h *peelHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
