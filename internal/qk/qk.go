// Package qk implements Quadratic Knapsack (QK) solvers: given an
// undirected graph with node costs and edge weights plus a budget B, select
// a node set of total cost ≤ B maximizing the induced edge weight.
//
// QK is the graph formulation of the BCC(2) subproblem (Observation 4.4 of
// the paper): nodes are singleton classifiers, an edge {X,Y} is a query xy
// weighted by its utility, node costs are classifier costs.
//
// Two solvers mirror the paper:
//
//   - SolveHeuristic is A_H^QK (Section 4.1): preprocessing to integer
//     costs in [1, B/2), expensive-node enumeration, log n random
//     bipartitions, a copy blow-up solved by an HkS heuristic (run
//     implicitly in copy-count space for scalability), the two-phase
//     copy-swapping procedure, and the final-selection case analysis of
//     Theorem 4.7.
//   - SolveTheory is A_T^QK, the modified Taylor [62] algorithm with the
//     P1/P2/P3 procedures and the Õ(n^{1/3}) worst-case bound of
//     Lemma 4.6; it is provided as a faithful reference implementation.
//
// SolveGreedy is the density-greedy baseline, and BruteForce the exhaustive
// validator used in tests.
package qk

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/guard"
	"repro/internal/wgraph"
)

// Result is a solved QK instance: the selected nodes (sorted), their
// induced edge weight and their total cost.
type Result struct {
	Nodes  []int
	Weight float64
	Cost   float64
}

func resultFor(g *wgraph.Graph, nodes []int) Result {
	sorted := append([]int(nil), nodes...)
	sort.Ints(sorted)
	return Result{
		Nodes:  sorted,
		Weight: g.InducedWeightOf(sorted),
		Cost:   g.TotalCost(sorted),
	}
}

func better(a, b Result) Result {
	if b.Weight > a.Weight {
		return b
	}
	return a
}

// SolveGreedy grows a solution by repeatedly adding the node with the best
// marginal-weight-to-cost ratio that still fits the budget. Zero-cost nodes
// are always taken, and isolated nodes carry a discounted bootstrap score
// from their best incident edge so heavy pairs can form. It is both the
// baseline reported in the experiments and the safety floor inside
// SolveHeuristic.
func SolveGreedy(g *wgraph.Graph, budget float64) Result {
	var free []int
	for v := 0; v < g.NumNodes(); v++ {
		if g.Cost(v) == 0 {
			free = append(free, v)
		}
	}
	return resultFor(g, greedyGrow(nil, g, budget, free))
}

// greedyGrow extends start (taken as already selected, its cost counted)
// with the best marginal weight-per-cost additions until the budget is
// exhausted. Gains are tracked incrementally in a lazily revalidated heap:
// since the remaining budget only shrinks, a node that does not fit can be
// discarded permanently, and stale scores are re-pushed on pop.
func greedyGrow(gu *guard.Guard, g *wgraph.Graph, budget float64, start []int) []int {
	n := g.NumNodes()
	in := make([]bool, n)
	var cost float64
	out := make([]int, 0, len(start))
	for _, v := range start {
		if !in[v] {
			in[v] = true
			cost += g.Cost(v)
			out = append(out, v)
		}
	}
	gain := make([]float64, n)
	boot := make([]float64, n)
	for _, e := range g.Edges() {
		switch {
		case in[e.U] && !in[e.V]:
			gain[e.V] += e.W
		case in[e.V] && !in[e.U]:
			gain[e.U] += e.W
		}
		if e.W/4 > boot[e.U] {
			boot[e.U] = e.W / 4
		}
		if e.W/4 > boot[e.V] {
			boot[e.V] = e.W / 4
		}
	}
	score := func(v int) float64 {
		gv := gain[v]
		if gv == 0 {
			gv = boot[v]
		}
		if gv <= 0 {
			return 0
		}
		return gv / math.Max(g.Cost(v), 1e-9)
	}
	h := &growHeap{}
	heap.Init(h)
	for v := 0; v < n; v++ {
		if !in[v] {
			if sc := score(v); sc > 0 {
				heap.Push(h, growEntry{v, sc})
			}
		}
	}
	for h.Len() > 0 {
		if gu.Check() {
			break
		}
		e := heap.Pop(h).(growEntry)
		v := e.v
		if in[v] {
			continue
		}
		sc := score(v)
		if sc <= 0 {
			continue
		}
		if math.Abs(sc-e.score) > 1e-12 {
			heap.Push(h, growEntry{v, sc})
			continue
		}
		if g.Cost(v) > budget-cost+1e-9 {
			continue // permanently unaffordable: budget only shrinks
		}
		in[v] = true
		cost += g.Cost(v)
		out = append(out, v)
		g.Neighbors(v, func(u int, w float64, _ int) {
			if !in[u] {
				gain[u] += w
				if sc := score(u); sc > 0 {
					heap.Push(h, growEntry{u, sc})
				}
			}
		})
	}
	return out
}

type growEntry struct {
	v     int
	score float64
}

type growHeap []growEntry

func (h growHeap) Len() int            { return len(h) }
func (h growHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h growHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *growHeap) Push(x interface{}) { *h = append(*h, x.(growEntry)) }
func (h *growHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BruteForce enumerates all node subsets; for tests on tiny graphs only.
func BruteForce(g *wgraph.Graph, budget float64) Result {
	n := g.NumNodes()
	if n > 22 {
		panic("qk: BruteForce limited to 22 nodes")
	}
	var best Result
	nodes := make([]int, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		nodes = nodes[:0]
		var cost float64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				nodes = append(nodes, v)
				cost += g.Cost(v)
			}
		}
		if cost > budget+1e-9 {
			continue
		}
		if w := g.InducedWeightOf(nodes); w > best.Weight {
			best = Result{Nodes: append([]int(nil), nodes...), Weight: w, Cost: cost}
		}
	}
	return best
}
