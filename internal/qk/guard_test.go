package qk

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/guard"
)

func TestSolveHeuristicGuardMatchesUnguarded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomQK(rng, 40, 0.2, 8)
	plain := SolveHeuristic(g, 20, Options{Seed: 3})
	guarded := SolveHeuristicGuard(guard.New(context.Background()), g, 20, Options{Seed: 3})
	if plain.Weight != guarded.Weight || plain.Cost != guarded.Cost {
		t.Errorf("untripped guard diverged: weight %v/%v cost %v/%v",
			guarded.Weight, plain.Weight, guarded.Cost, plain.Cost)
	}
}

func TestCancelReturnsFeasibleSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomQK(rng, 60, 0.2, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	guard.Arm("qk.restart", guard.CancelFault(cancel))
	defer guard.DisarmAll()
	gu := guard.New(ctx)
	res := SolveHeuristicGuard(gu, g, 25, Options{Seed: 3})
	if !gu.Tripped() {
		t.Fatal("fault did not trip the guard")
	}
	checkFeasible(t, g, res, 25)
}

func TestWorkerPanicContained(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomQK(rng, 60, 0.2, 8)
	guard.Arm("qk.restart", guard.PanicFault("worker boom"))
	defer guard.DisarmAll()
	gu := guard.New(context.Background())
	res := SolveHeuristicGuard(gu, g, 25, Options{Seed: 3})
	if gu.Status() != guard.Recovered {
		t.Fatalf("Status = %v, want Recovered", gu.Status())
	}
	if gu.PanicErr() == nil {
		t.Fatal("no panic recorded")
	}
	checkFeasible(t, g, res, 25)
}

func TestWorkerPoolLeaksNoGoroutinesOnCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomQK(rng, 80, 0.25, 8)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		guard.Arm("qk.restart", guard.CancelFault(cancel))
		_ = SolveHeuristicGuard(guard.New(ctx), g, 30, Options{Seed: int64(i + 1)})
		guard.DisarmAll()
		cancel()
	}
	// The pool drains via wg.Wait() before SolveHeuristicGuard returns, so
	// no worker can outlive the call; give the runtime a moment to retire
	// finished goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
