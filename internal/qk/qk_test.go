package qk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wgraph"
)

func randomQK(rng *rand.Rand, n int, p float64, maxCost int) *wgraph.Graph {
	g := wgraph.New(n)
	for v := 0; v < n; v++ {
		g.SetCost(v, float64(rng.Intn(maxCost+1)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, float64(1+rng.Intn(10)))
			}
		}
	}
	return g
}

func checkFeasible(t *testing.T, g *wgraph.Graph, res Result, budget float64) {
	t.Helper()
	var cost float64
	seen := map[int]bool{}
	for _, v := range res.Nodes {
		if seen[v] {
			t.Fatalf("node %d selected twice", v)
		}
		seen[v] = true
		cost += g.Cost(v)
	}
	if cost > budget+1e-6 {
		t.Fatalf("cost %v exceeds budget %v", cost, budget)
	}
	if math.Abs(cost-res.Cost) > 1e-6 {
		t.Fatalf("reported cost %v != recomputed %v", res.Cost, cost)
	}
	if w := g.InducedWeightOf(res.Nodes); math.Abs(w-res.Weight) > 1e-6 {
		t.Fatalf("reported weight %v != recomputed %v", res.Weight, w)
	}
}

func TestGreedyPairExample(t *testing.T) {
	// Example from Figure 2 of the paper (QK instance): nodes X, Y, Z with
	// costs 2, 1, 2; edges xy (utility 2) and yz (utility 1); budget 3.
	g := wgraph.New(3)
	g.SetCost(0, 2)    // X
	g.SetCost(1, 1)    // Y
	g.SetCost(2, 2)    // Z
	g.AddEdge(0, 1, 2) // xy
	g.AddEdge(1, 2, 1) // yz
	res := SolveHeuristic(g, 3, Options{})
	if res.Weight != 2 {
		t.Fatalf("Figure 2 QK optimum: weight %v, want 2 ({X,Y})", res.Weight)
	}
	checkFeasible(t, g, res, 3)
}

func TestZeroCostNodesAlwaysUsable(t *testing.T) {
	g := wgraph.New(3)
	g.SetCost(0, 0)
	g.SetCost(1, 0)
	g.SetCost(2, 100)
	g.AddEdge(0, 1, 7)
	res := SolveHeuristic(g, 1, Options{})
	if res.Weight != 7 {
		t.Fatalf("zero-cost pair: weight %v, want 7", res.Weight)
	}
	if res.Cost != 0 {
		t.Fatalf("zero-cost pair reported cost %v", res.Cost)
	}
}

func TestExpensivePair(t *testing.T) {
	// Two expensive nodes that exactly consume the budget carry the only
	// heavy edge.
	g := wgraph.New(4)
	g.SetCost(0, 5)
	g.SetCost(1, 5)
	g.SetCost(2, 1)
	g.SetCost(3, 1)
	g.AddEdge(0, 1, 100)
	g.AddEdge(2, 3, 1)
	res := SolveHeuristic(g, 10, Options{})
	if res.Weight != 100 {
		t.Fatalf("expensive pair: weight %v, want 100 (%v)", res.Weight, res.Nodes)
	}
	checkFeasible(t, g, res, 10)
}

func TestSingleExpensivePlusCheap(t *testing.T) {
	// One expensive hub node plus cheap neighbors beats anything else.
	g := wgraph.New(5)
	g.SetCost(0, 6) // hub, cost ≥ B/2
	for v := 1; v < 5; v++ {
		g.SetCost(v, 1)
		g.AddEdge(0, v, 10)
	}
	res := SolveHeuristic(g, 10, Options{})
	if res.Weight != 40 {
		t.Fatalf("hub solution: weight %v, want 40 (%v)", res.Weight, res.Nodes)
	}
	checkFeasible(t, g, res, 10)
}

func TestHeuristicFeasibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(20)
		g := randomQK(rng, n, 0.3, 8)
		budget := float64(rng.Intn(30))
		res := SolveHeuristic(g, budget, Options{Seed: int64(trial + 1)})
		checkFeasible(t, g, res, budget)
	}
}

func TestHeuristicNearOptimalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var totGot, totOpt float64
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		g := randomQK(rng, n, 0.4, 5)
		budget := float64(2 + rng.Intn(12))
		res := SolveHeuristic(g, budget, Options{Seed: int64(trial + 1)})
		opt := BruteForce(g, budget)
		if res.Weight > opt.Weight+1e-9 {
			t.Fatalf("trial %d: heuristic %v beats brute force %v (bug in one of them)",
				trial, res.Weight, opt.Weight)
		}
		if opt.Weight > 0 && res.Weight < 0.6*opt.Weight {
			t.Errorf("trial %d: heuristic %v < 0.6 × optimal %v (n=%d B=%v)",
				trial, res.Weight, opt.Weight, n, budget)
		}
		totGot += res.Weight
		totOpt += opt.Weight
	}
	// The paper reports the HkS heuristic typically reaching 65–80% of
	// optimal; our portfolio should average well above that floor on these
	// small instances.
	if totGot < 0.85*totOpt {
		t.Fatalf("average quality %.3f below 0.85", totGot/totOpt)
	}
}

func TestHeuristicDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomQK(rng, 30, 0.2, 6)
	a := SolveHeuristic(g, 20, Options{Seed: 5})
	b := SolveHeuristic(g, 20, Options{Seed: 5})
	if a.Weight != b.Weight || len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
}

func TestHeuristicFractionalCosts(t *testing.T) {
	g := wgraph.New(4)
	g.SetCost(0, 1.5)
	g.SetCost(1, 2.25)
	g.SetCost(2, 0.75)
	g.SetCost(3, 3.1)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 4)
	g.AddEdge(2, 3, 3)
	res := SolveHeuristic(g, 4.5, Options{})
	checkFeasible(t, g, res, 4.5)
	// {0,1,2} costs 4.5 and yields 9 — the optimum.
	if res.Weight < 9-1e-9 {
		t.Fatalf("fractional-cost optimum missed: weight %v, want 9", res.Weight)
	}
}

func TestGreedyBaselineFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		g := randomQK(rng, 15, 0.3, 6)
		budget := float64(rng.Intn(25))
		res := SolveGreedy(g, budget)
		checkFeasible(t, g, res, budget)
	}
}

func TestTheorySolverFeasibleAndSane(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		g := randomQK(rng, n, 0.4, 5)
		budget := float64(3 + rng.Intn(12))
		res := SolveTheory(g, budget, Options{Seed: int64(trial + 1)})
		checkFeasible(t, g, res, budget)
		opt := BruteForce(g, budget)
		if opt.Weight > 0 && res.Weight < 0.3*opt.Weight {
			t.Errorf("trial %d: theory solver %v far below optimal %v",
				trial, res.Weight, opt.Weight)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	g := wgraph.New(0)
	res := SolveHeuristic(g, 5, Options{})
	if res.Weight != 0 || len(res.Nodes) != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
	g2 := wgraph.New(3) // no edges
	g2.SetCost(0, 1)
	res = SolveHeuristic(g2, 5, Options{})
	if res.Weight != 0 {
		t.Fatalf("edgeless graph: %+v", res)
	}
	g3 := wgraph.New(2)
	g3.SetCost(0, 5)
	g3.SetCost(1, 5)
	g3.AddEdge(0, 1, 3)
	res = SolveHeuristic(g3, 0, Options{})
	if res.Weight != 0 || res.Cost != 0 {
		t.Fatalf("zero budget: %+v", res)
	}
}

func TestBudgetBoundaryExact(t *testing.T) {
	// Solution exactly at the budget must be accepted.
	g := wgraph.New(2)
	g.SetCost(0, 3)
	g.SetCost(1, 4)
	g.AddEdge(0, 1, 10)
	res := SolveHeuristic(g, 7, Options{})
	if res.Weight != 10 {
		t.Fatalf("exact-budget pair: weight %v, want 10", res.Weight)
	}
}

func BenchmarkHeuristicMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := randomQK(rng, 500, 0.02, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveHeuristic(g, 200, Options{Seed: int64(i + 1)})
	}
}

func BenchmarkGreedyMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomQK(rng, 500, 0.02, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveGreedy(g, 200)
	}
}
