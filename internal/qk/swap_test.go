package qk

import (
	"math/rand"
	"testing"

	"repro/internal/wgraph"
)

// literalSwapPhases implements the paper's two swap phases verbatim (in
// copy-count space) for one side of the bipartition:
//
//	phase 1: while a selected copy of node b and a non-selected copy of a
//	         different node a with strictly higher per-copy weighted degree
//	         exist, move one unit from b to a;
//	phase 2: fix an order over the partially selected nodes and move units
//	         from lower- to higher-position nodes.
//
// Our production code computes the fixed point of these phases directly
// (countState.refill); this reference exists to validate that shortcut.
func literalSwapPhases(st *countState, left bool) {
	n := len(st.s)
	onSide := func(v int) bool { return st.active[v] && st.side[v] == left }
	// Phase 1.
	for {
		moved := false
		for b := 0; b < n && !moved; b++ {
			if !onSide(b) || st.s[b] == 0 {
				continue
			}
			db := st.perCopyDeg(b)
			for a := 0; a < n; a++ {
				if a == b || !onSide(a) || st.s[a] >= st.c[a] {
					continue
				}
				if st.perCopyDeg(a) > db+1e-12 {
					st.s[b]--
					st.s[a]++
					moved = true
					break
				}
			}
		}
		if !moved {
			break
		}
	}
	// Phase 2: arbitrary fixed order = ascending node index.
	for {
		moved := false
		var partials []int
		for v := 0; v < n; v++ {
			if onSide(v) && st.s[v] > 0 && st.s[v] < st.c[v] {
				partials = append(partials, v)
			}
		}
		for i := 0; i < len(partials) && !moved; i++ {
			for j := i + 1; j < len(partials); j++ {
				lo, hi := partials[i], partials[j]
				// Move units from the lower-position to the higher-position
				// node (as long as both remain movable).
				if st.s[lo] > 0 && st.s[hi] < st.c[hi] {
					st.s[lo]--
					st.s[hi]++
					moved = true
					break
				}
			}
		}
		if !moved {
			break
		}
	}
}

func randomSwapState(rng *rand.Rand) *countState {
	n := 5 + rng.Intn(8)
	g := wgraph.New(n)
	cint := make([]int, n)
	active := make([]bool, n)
	side := make([]bool, n)
	for v := 0; v < n; v++ {
		g.SetCost(v, 1)
		cint[v] = 1 + rng.Intn(4)
		active[v] = true
		side[v] = rng.Intn(2) == 0
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if side[u] != side[v] && rng.Float64() < 0.5 {
				g.AddEdge(u, v, float64(1+rng.Intn(9)))
			}
		}
	}
	st := newCountState(g, active, side, cint, make([]float64, n))
	for v := 0; v < n; v++ {
		st.s[v] = rng.Intn(cint[v] + 1)
	}
	return st
}

func TestLiteralSwapPhasesNeverDecreaseWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		st := randomSwapState(rng)
		before := st.weight()
		literalSwapPhases(st, true)
		literalSwapPhases(st, false)
		if st.weight() < before-1e-9 {
			t.Fatalf("trial %d: literal swap decreased weight %v → %v",
				trial, before, st.weight())
		}
	}
}

func TestLiteralSwapLeavesAtMostOnePartialPerSide(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		st := randomSwapState(rng)
		literalSwapPhases(st, true)
		literalSwapPhases(st, false)
		for _, left := range []bool{true, false} {
			partials := 0
			for v := range st.s {
				if st.side[v] == left && st.s[v] > 0 && st.s[v] < st.c[v] {
					partials++
				}
			}
			if partials > 1 {
				t.Fatalf("trial %d: %d partials on side %v after literal phases",
					trial, partials, left)
			}
		}
	}
}

func TestRefillComparableToLiteralSwap(t *testing.T) {
	// For a FIXED opposite side, refill's greedy fill is optimal, but the
	// two sides interact (a per-side-optimal L can steer the subsequent R
	// refill worse than the literal phases would), so strict per-instance
	// dominance does not hold. The production shortcut must, however, be
	// at least as good in aggregate and preserve per-side unit counts.
	rng := rand.New(rand.NewSource(3))
	var refTot, litTot float64
	for trial := 0; trial < 200; trial++ {
		base := randomSwapState(rng)

		lit := newCountState(base.g, base.active, base.side, base.c, base.bonus)
		copy(lit.s, base.s)
		literalSwapPhases(lit, true)
		literalSwapPhases(lit, false)

		ref := newCountState(base.g, base.active, base.side, base.c, base.bonus)
		copy(ref.s, base.s)
		ref.refill(true)
		ref.refill(false)

		refTot += ref.weight()
		litTot += lit.weight()
		// Both must preserve the unit counts per side.
		for _, left := range []bool{true, false} {
			var a, b int
			for v := range base.s {
				if base.side[v] == left {
					a += lit.s[v]
					b += ref.s[v]
				}
			}
			if a != b {
				t.Fatalf("trial %d: unit counts diverge (%d vs %d)", trial, a, b)
			}
		}
	}
	if refTot < litTot-1e-9 {
		t.Fatalf("refill aggregate weight %v below literal phases %v", refTot, litTot)
	}
}
