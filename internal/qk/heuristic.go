package qk

import (
	"container/heap"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/wgraph"
)

// Options tunes SolveHeuristic. The zero value gives the defaults from the
// paper's description: ⌈log₂ n⌉ random bipartition iterations, budget-scaled
// integer costs, and a bounded expensive-node enumeration.
type Options struct {
	// Iterations is the number of random bipartition rounds (paper: log n,
	// each running the whole pipeline, best solution kept). Default
	// ⌈log₂ n⌉ + 1.
	Iterations int
	// Seed drives all randomness deterministically. Default 1.
	Seed int64
	// MaxScaledBudget bounds the integerized budget B′ (and thus the
	// number of unit copies per node, ≤ B′/2). Default 1024.
	MaxScaledBudget int
	// MaxTotalCopies bounds Σ c′(v); the cost grid is coarsened until the
	// bound holds. Default 200000.
	MaxTotalCopies int
	// ExpensiveCap bounds how many expensive nodes (cost ≥ B/2) are
	// enumerated individually and in pairs. Default 40.
	ExpensiveCap int
	// LocalSearchRounds caps unit-move improvement sweeps per iteration.
	// Default 4.
	LocalSearchRounds int
	// Trace records per-restart-batch spans (obs.StageQKRestart). nil
	// disables tracing at the cost of one branch per restart; core's
	// SolveCtx sets it from the context recorder.
	Trace *obs.Recorder
}

func (o Options) withDefaults(n int) Options {
	if o.Iterations == 0 {
		o.Iterations = int(math.Ceil(math.Log2(float64(n+2)))) + 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxScaledBudget == 0 {
		o.MaxScaledBudget = 1024
	}
	if o.MaxTotalCopies == 0 {
		o.MaxTotalCopies = 200000
	}
	if o.ExpensiveCap == 0 {
		o.ExpensiveCap = 40
	}
	if o.LocalSearchRounds == 0 {
		o.LocalSearchRounds = 4
	}
	return o
}

// SolveHeuristic is A_H^QK (Section 4.1 of the paper): the practical
// Quadratic Knapsack solver built from preprocessing, random bipartitions,
// an implicit copy blow-up solved by an HkS-style greedy in copy-count
// space, the two-phase copy-swapping procedure, and the Theorem 4.7 final
// selection. The returned solution never does worse than SolveGreedy.
func SolveHeuristic(g *wgraph.Graph, budget float64, opts Options) Result {
	return SolveHeuristicGuard(nil, g, budget, opts)
}

// SolveHeuristicGuard is SolveHeuristic under a guard: the pipeline checks
// it between cases and inside the restart workers (the worker pool always
// drains, so cancellation never leaks goroutines), and with a non-nil
// guard any panic in the pipeline is contained into it, returning the best
// result found so far. A nil guard never trips and re-raises panics,
// preserving SolveHeuristic's legacy behavior.
func SolveHeuristicGuard(gu *guard.Guard, g *wgraph.Graph, budget float64, opts Options) (res Result) {
	n := g.NumNodes()
	opts = opts.withDefaults(n)
	best := SolveGreedy(g, budget) // safety floor
	res = best

	if n == 0 || g.NumEdges() == 0 || budget < 0 {
		return res
	}
	if gu != nil {
		defer func() {
			if p := recover(); p != nil {
				gu.NotePanic(p)
				res = best
			}
		}()
	}

	// Floor: the heaviest affordable edges, greedily completed. Guards
	// against greedy traps where a cheap node promises an unaffordable
	// edge.
	affordable := make([]wgraph.Edge, 0, 16)
	for _, e := range g.Edges() {
		if g.Cost(e.U)+g.Cost(e.V) <= budget+1e-9 {
			affordable = append(affordable, e)
		}
	}
	sort.Slice(affordable, func(i, j int) bool { return affordable[i].W > affordable[j].W })
	if len(affordable) > 8 {
		affordable = affordable[:8]
	}
	for _, e := range affordable {
		best = better(best, resultFor(g, greedyComplete(gu, g, budget, []int{e.U, e.V})))
	}

	// Preprocessing: free nodes are always selected; nodes above the
	// budget can never be.
	var zero []int
	for v := 0; v < n; v++ {
		if g.Cost(v) == 0 {
			zero = append(zero, v)
		}
	}
	// Expensive nodes: cost in [B/2, B]. At most two fit in any solution.
	var expensive []int
	for v := 0; v < n; v++ {
		c := g.Cost(v)
		if c >= budget/2 && c <= budget && c > 0 {
			expensive = append(expensive, v)
		}
	}
	sort.Slice(expensive, func(i, j int) bool {
		return g.WeightedDegree(expensive[i]) > g.WeightedDegree(expensive[j])
	})
	if len(expensive) > opts.ExpensiveCap {
		expensive = expensive[:opts.ExpensiveCap]
	}
	isExpensive := make([]bool, n)
	for v := 0; v < n; v++ {
		c := g.Cost(v)
		if c >= budget/2 && c > 0 {
			isExpensive[v] = true
		}
	}

	// Case: exactly two expensive nodes — enumerate pairs directly.
	for i := 0; i < len(expensive); i++ {
		if gu.Check() {
			break
		}
		for j := i + 1; j < len(expensive); j++ {
			a, b := expensive[i], expensive[j]
			if g.Cost(a)+g.Cost(b) <= budget+1e-9 {
				cand := append(append([]int(nil), zero...), a, b)
				best = better(best, resultFor(g, cand))
			}
		}
	}
	// Case: no expensive node in the optimum.
	if !gu.Tripped() {
		best = better(best, coreSolve(gu, g, budget, budget, isExpensive, zero, opts))
	}
	// Case: exactly one expensive node — preselect it, reduce the budget
	// for the quadratic part (the full budget still applies to the final
	// greedy completion, which accounts for the preselected node's cost).
	for _, a := range expensive {
		if gu.Tripped() {
			break
		}
		excl := make([]bool, n)
		copy(excl, isExpensive)
		excl[a] = false
		pre := append(append([]int(nil), zero...), a)
		best = better(best, coreSolve(gu, g, budget-g.Cost(a), budget, excl, pre, opts))
	}
	res = best
	return res
}

// coreSolve runs the bipartition/blow-up/HkS pipeline on the instance with
// the given exclusions and preselected (treated-as-free) nodes. budget
// bounds the quadratic part; fullBudget (≥ budget plus the preselected
// cost) bounds the final completed solutions.
func coreSolve(gu *guard.Guard, g *wgraph.Graph, budget, fullBudget float64, excluded []bool, pre []int, opts Options) Result {
	n := g.NumNodes()
	preMark := make([]bool, n)
	for _, v := range pre {
		preMark[v] = true
	}
	// Active nodes: positive-cost, affordable, not excluded, not
	// preselected. Nodes above half the (current) budget are dropped so
	// that the final-selection feasibility argument holds.
	active := make([]bool, n)
	anyActive := false
	for v := 0; v < n; v++ {
		c := g.Cost(v)
		if preMark[v] || (excluded != nil && excluded[v]) {
			continue
		}
		if c <= 0 || c > budget/2+1e-9 {
			continue
		}
		active[v] = true
		anyActive = true
	}
	if !anyActive || budget <= 0 {
		return resultFor(g, greedyComplete(gu, g, fullBudget, pre))
	}

	// Integerize costs: c′(v) = max(1, ⌈c(v)·f⌉) with f chosen so that
	// B′ ≤ MaxScaledBudget and Σ c′ ≤ MaxTotalCopies.
	f := 1.0
	integral := budget == math.Trunc(budget) && budget <= float64(opts.MaxScaledBudget)
	if integral {
		for v := 0; v < n; v++ {
			if active[v] && g.Cost(v) != math.Trunc(g.Cost(v)) {
				integral = false
				break
			}
		}
	}
	if !integral {
		f = float64(opts.MaxScaledBudget) / budget
	}
	cint := make([]int, n)
	for {
		total := 0
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			cint[v] = int(math.Ceil(g.Cost(v)*f - 1e-12))
			if cint[v] < 1 {
				cint[v] = 1
			}
			total += cint[v]
		}
		if total <= opts.MaxTotalCopies || f <= 1e-9 {
			break
		}
		f /= 2
	}
	intBudget := int(math.Floor(budget*f + 1e-12))
	if intBudget < 2 {
		return resultFor(g, greedyComplete(gu, g, fullBudget, pre))
	}

	// Per-node linear bonus: edges into preselected nodes contribute
	// linearly once the node is fully selected.
	bonus := make([]float64, n)
	for v := 0; v < n; v++ {
		if !active[v] {
			continue
		}
		g.Neighbors(v, func(u int, w float64, _ int) {
			if preMark[u] {
				bonus[v] += w
			}
		})
	}

	best := resultFor(g, greedyComplete(gu, g, fullBudget, pre))

	// The paper runs the log n bipartition iterations in parallel; each
	// iteration only reads the shared graph and derives its own RNG, so a
	// bounded worker pool is safe. Results merge in iteration order for
	// determinism. On a tripped guard no further restarts launch, and
	// wg.Wait() always drains the ones in flight — cancellation never
	// leaks a goroutine.
	results := make([]Result, opts.Iterations)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for iter := 0; iter < opts.Iterations; iter++ {
		if gu.Tripped() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(iter int) {
			defer wg.Done()
			defer func() { <-sem }()
			if gu != nil {
				// A panic must be contained on the worker's own stack: the
				// caller's recover cannot catch a goroutine panic.
				defer gu.Recover()
			}
			guard.Inject("qk.restart")
			if gu.Tripped() {
				return
			}
			t0 := opts.Trace.Start()
			defer opts.Trace.End(obs.StageQKRestart, t0, n)
			rng := rand.New(rand.NewSource(opts.Seed + int64(iter)*7919))
			side := make([]bool, n)
			for v := 0; v < n; v++ {
				side[v] = rng.Intn(2) == 0
			}
			st := newCountState(g, active, side, cint, bonus)
			k := intBudget / 2
			st.greedyFill(gu, k)
			st.localSearch(gu, opts.LocalSearchRounds)
			st.refill(true)  // L side, by per-copy degree desc
			st.refill(false) // R side
			var iterBest Result
			for _, cand := range st.finalize(intBudget) {
				nodes := append(append([]int(nil), pre...), cand...)
				nodes = greedyComplete(gu, g, fullBudget, nodes)
				iterBest = better(iterBest, resultFor(g, nodes))
			}
			results[iter] = iterBest
		}(iter)
	}
	wg.Wait()
	for _, r := range results {
		best = better(best, r)
	}
	return best
}

// greedyComplete spends any leftover budget on the best marginal
// weight-per-cost additions (heap-based; see greedyGrow).
func greedyComplete(gu *guard.Guard, g *wgraph.Graph, budget float64, nodes []int) []int {
	return greedyGrow(gu, g, budget, nodes)
}

// countState is the implicit blow-up graph Ĝ: every active node v stands
// for c′(v) unit-cost copies; edges across the bipartition have per-copy
// weight w(u,v)/(c′(u)·c′(v)). Selecting s(v) copies of every node
// reproduces the HkS solution on Ĝ without materializing it, which is what
// makes the blow-up scale (copies of a node are interchangeable).
type countState struct {
	g      *wgraph.Graph
	active []bool
	side   []bool // true = L
	c      []int  // copies per node
	s      []int  // selected copies
	bonus  []float64
}

func newCountState(g *wgraph.Graph, active, side []bool, c []int, bonus []float64) *countState {
	return &countState{
		g: g, active: active, side: side, c: c,
		s:     make([]int, g.NumNodes()),
		bonus: bonus,
	}
}

// perCopyDeg is the weighted degree of one copy of v into the currently
// selected copies on the opposite side (plus its share of the linear
// bonus).
func (st *countState) perCopyDeg(v int) float64 {
	d := st.bonus[v] / float64(st.c[v])
	st.g.Neighbors(v, func(u int, w float64, _ int) {
		if st.active[u] && st.side[u] != st.side[v] && st.s[u] > 0 {
			d += w * float64(st.s[u]) / (float64(st.c[u]) * float64(st.c[v]))
		}
	})
	return d
}

// weight is the count-space objective: the total weight of the selected
// copies' induced subgraph in Ĝ.
func (st *countState) weight() float64 {
	var sum float64
	for _, e := range st.g.Edges() {
		if st.active[e.U] && st.active[e.V] && st.side[e.U] != st.side[e.V] {
			sum += e.W * float64(st.s[e.U]) * float64(st.s[e.V]) /
				(float64(st.c[e.U]) * float64(st.c[e.V]))
		}
	}
	for v := range st.s {
		if st.active[v] && st.s[v] > 0 {
			sum += st.bonus[v] * float64(st.s[v]) / float64(st.c[v])
		}
	}
	return sum
}

func (st *countState) totalSelected() int {
	t := 0
	for v, sv := range st.s {
		if st.active[v] {
			t += sv
		}
	}
	return t
}

// greedyFill places up to k unit copies, one at a time, always choosing
// the copy with the maximum marginal per-copy degree (lazy max-heap). When
// no positive gain exists it seeds with the cross-edge of the highest
// per-copy-pair weight.
func (st *countState) greedyFill(gu *guard.Guard, k int) {
	h := &gainHeap{}
	heap.Init(h)
	gain := make([]float64, len(st.s))
	for v := range st.s {
		if st.active[v] {
			gain[v] = st.bonus[v] / float64(st.c[v])
			if gain[v] > 0 {
				heap.Push(h, gainItem{v, gain[v]})
			}
		}
	}
	placed := 0
	for placed < k {
		if gu.Check() {
			return
		}
		v := -1
		for h.Len() > 0 {
			it := heap.Pop(h).(gainItem)
			if st.s[it.node] >= st.c[it.node] {
				continue
			}
			if it.gain < gain[it.node]-1e-12 {
				heap.Push(h, gainItem{it.node, gain[it.node]})
				continue
			}
			if it.gain <= 0 {
				h.reset()
				break
			}
			v = it.node
			break
		}
		if v < 0 {
			// Seed: best cross edge with both endpoints addable.
			var bu, bv int = -1, -1
			bestW := 0.0
			for _, e := range st.g.Edges() {
				if !st.active[e.U] || !st.active[e.V] || st.side[e.U] == st.side[e.V] {
					continue
				}
				if st.s[e.U] >= st.c[e.U] || st.s[e.V] >= st.c[e.V] {
					continue
				}
				pc := e.W / (float64(st.c[e.U]) * float64(st.c[e.V]))
				if pc > bestW {
					bestW, bu, bv = pc, e.U, e.V
				}
			}
			if bu < 0 || placed+2 > k {
				break
			}
			st.place(bu, gain, h)
			st.place(bv, gain, h)
			placed += 2
			continue
		}
		st.place(v, gain, h)
		placed++
	}
}

func (st *countState) place(v int, gain []float64, h *gainHeap) {
	st.s[v]++
	st.g.Neighbors(v, func(u int, w float64, _ int) {
		if st.active[u] && st.side[u] != st.side[v] {
			gain[u] += w / (float64(st.c[u]) * float64(st.c[v]))
			if st.s[u] < st.c[u] {
				heap.Push(h, gainItem{u, gain[u]})
			}
		}
	})
	if st.s[v] < st.c[v] {
		heap.Push(h, gainItem{v, gain[v]})
	}
}

// localSearch moves single units between nodes while that improves the
// count-space weight.
func (st *countState) localSearch(gu *guard.Guard, rounds int) {
	n := len(st.s)
	for round := 0; round < rounds; round++ {
		if gu.Check() {
			return
		}
		// Weakest selected unit.
		worst, worstD := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if st.active[v] && st.s[v] > 0 {
				if d := st.perCopyDeg(v); d < worstD {
					worst, worstD = v, d
				}
			}
		}
		if worst < 0 {
			break
		}
		st.s[worst]--
		bestV, bestD := -1, worstD
		for v := 0; v < n; v++ {
			if st.active[v] && st.s[v] < st.c[v] {
				if d := st.perCopyDeg(v); d > bestD+1e-12 {
					bestV, bestD = v, d
				}
			}
		}
		if bestV < 0 {
			st.s[worst]++
			break
		}
		st.s[bestV]++
	}
}

// refill reassigns the units of one side greedily by per-copy degree
// (descending), filling nodes to capacity — the per-side-optimal fixed
// point of the paper's two-phase swapping procedure: afterwards at most
// one node on the side is partially selected, and the weight has not
// decreased (all moves go from lower- to higher-degree copies; intra-side
// moves do not change any copy's degree). For a fixed opposite side this
// is the best achievable arrangement; swap_test.go compares it against a
// literal implementation of the paper's phases.
func (st *countState) refill(left bool) {
	n := len(st.s)
	units := 0
	var nodes []int
	for v := 0; v < n; v++ {
		if st.active[v] && st.side[v] == left {
			units += st.s[v]
			st.s[v] = 0
			nodes = append(nodes, v)
		}
	}
	if units == 0 {
		return
	}
	deg := make([]float64, n)
	for _, v := range nodes {
		deg[v] = st.perCopyDeg(v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if deg[nodes[i]] != deg[nodes[j]] {
			return deg[nodes[i]] > deg[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	for _, v := range nodes {
		if units == 0 {
			break
		}
		take := st.c[v]
		if take > units {
			take = units
		}
		st.s[v] = take
		units -= take
	}
}

// finalize applies the Theorem 4.7 final-selection analysis and returns
// candidate node sets (in original node IDs) to be evaluated by the
// caller. Every candidate consists of completely selected nodes only.
func (st *countState) finalize(intBudget int) [][]int {
	n := len(st.s)
	partials := make([]int, 0, 2)
	for v := 0; v < n; v++ {
		if st.active[v] && st.s[v] > 0 && st.s[v] < st.c[v] {
			partials = append(partials, v)
		}
	}
	remaining := intBudget - st.totalSelected()

	complete := func() []int {
		var out []int
		for v := 0; v < n; v++ {
			if st.active[v] && st.s[v] == st.c[v] {
				out = append(out, v)
			}
		}
		return out
	}

	switch len(partials) {
	case 0:
		return [][]int{complete()}
	case 1:
		p := partials[0]
		if missing := st.c[p] - st.s[p]; missing <= remaining {
			st.s[p] = st.c[p]
			return [][]int{complete()}
		}
		// Cannot complete (can only happen after aggressive cost
		// coarsening); drop the partial node.
		st.s[p] = 0
		return [][]int{complete()}
	default:
		uL, uR := partials[0], partials[1]
		if len(partials) > 2 {
			// More than two partials can only arise when a side had zero
			// units; degrade gracefully by dropping the extras.
			for _, p := range partials[2:] {
				st.s[p] = 0
			}
		}
		missing := (st.c[uL] - st.s[uL]) + (st.c[uR] - st.s[uR])
		if missing <= remaining {
			st.s[uL] = st.c[uL]
			st.s[uR] = st.c[uR]
			return [][]int{complete()}
		}
		// Case analysis. Candidate A (Case I): drop the uL–uR edge
		// contribution and consolidate units into the higher-degree node.
		// Candidate B (Case II): keep only {uL, uR}, fully selected.
		sL, sR := st.s[uL], st.s[uR]
		degL := st.perCopyDeg(uL) - st.edgeShare(uL, uR)*float64(sR)
		degR := st.perCopyDeg(uR) - st.edgeShare(uR, uL)*float64(sL)
		if degR > degL {
			uL, uR = uR, uL
			sL, sR = sR, sL
		}
		// Transfer from uR into uL.
		transfer := sR
		if room := st.c[uL] - sL; transfer > room {
			transfer = room
		}
		st.s[uL] = sL + transfer
		st.s[uR] = sR - transfer
		if st.s[uL] < st.c[uL] || st.s[uR] > 0 {
			// Could not fully consolidate; drop leftovers.
			if st.s[uL] < st.c[uL] {
				st.s[uL] = 0
			}
			st.s[uR] = 0
		} else {
			st.s[uR] = 0
		}
		candA := complete()
		candB := []int{uL, uR}
		return [][]int{candA, candB}
	}
}

// edgeShare is the per-copy-pair weight of the u–v edge in Ĝ.
func (st *countState) edgeShare(u, v int) float64 {
	w := st.g.EdgeWeight(u, v)
	if w == 0 {
		return 0
	}
	return w / (float64(st.c[u]) * float64(st.c[v]))
}

type gainItem struct {
	node int
	gain float64
}

type gainHeap []gainItem

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
func (h *gainHeap) reset() { *h = (*h)[:0] }
