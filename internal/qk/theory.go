package qk

import (
	"math"
	"sort"

	"repro/internal/dks"
	"repro/internal/wgraph"
)

// SolveTheory is A_T^QK: the Õ(n^{1/3})-approximation of Lemma 4.6,
// obtained by modifying Taylor's Õ(n^{0.4}) Quadratic Knapsack algorithm
// [62]. It normalizes weights and costs, partitions the edges into
// O(log³ n) class subgraphs G_{i,j,t} (cost class 2^i × cost class 2^j ×
// weight class 2^t), solves each subgraph — by DkS when i = j, and by the
// best of the three procedures P1 (top degrees), P2 (copy blow-up + DkS)
// and P3 (best single right node plus its neighborhood) when i > j — and
// returns the best subgraph solution found.
//
// It exists as a faithful reference implementation of the worst-case
// algorithm; SolveHeuristic dominates it on practical inputs and is the
// solver used by the BCC pipeline.
func SolveTheory(g *wgraph.Graph, budget float64, opts Options) Result {
	n := g.NumNodes()
	opts = opts.withDefaults(n)
	best := SolveGreedy(g, budget)
	if n == 0 || g.NumEdges() == 0 || budget <= 0 {
		return best
	}

	// Weight normalization: divide by wmax/n², drop weights < 1, round
	// down to powers of two. We keep the original weights for evaluation
	// and only use the classes for partitioning.
	wmax := 0.0
	for _, e := range g.Edges() {
		if g.Cost(e.U) <= budget && g.Cost(e.V) <= budget &&
			g.Cost(e.U)+g.Cost(e.V) <= budget && e.W > wmax {
			wmax = e.W
		}
	}
	if wmax == 0 {
		return best
	}
	wScale := wmax / (float64(n) * float64(n))

	// Cost normalization: divide costs and budget by B/n, then take all
	// nodes of normalized cost ≤ 1 if that fits half the budget; round the
	// rest up to powers of two.
	cScale := budget / float64(n)
	normCost := func(v int) float64 { return g.Cost(v) / cScale }

	// Cheap nodes (normalized cost ≤ 1) are taken upfront when affordable
	// as a group within half the budget.
	var cheap []int
	var cheapCost float64
	for v := 0; v < n; v++ {
		if normCost(v) <= 1 {
			cheap = append(cheap, v)
			cheapCost += g.Cost(v)
		}
	}
	if cheapCost > budget/2 {
		// Keep only the highest-degree cheap nodes within half the budget.
		sort.Slice(cheap, func(i, j int) bool {
			return g.WeightedDegree(cheap[i]) > g.WeightedDegree(cheap[j])
		})
		var kept []int
		var cost float64
		for _, v := range cheap {
			if cost+g.Cost(v) <= budget/2 {
				kept = append(kept, v)
				cost += g.Cost(v)
			}
		}
		cheap = kept
	}
	best = better(best, resultFor(g, greedyComplete(nil, g, budget, cheap)))

	classOf := func(x float64) int {
		if x <= 1 {
			return 0
		}
		return int(math.Floor(math.Log2(x)))
	}

	// Partition edges into class subgraphs.
	type key struct{ i, j, t int }
	groups := make(map[key][]wgraph.Edge)
	for _, e := range g.Edges() {
		cu, cv := normCost(e.U), normCost(e.V)
		if g.Cost(e.U) > budget || g.Cost(e.V) > budget ||
			g.Cost(e.U)+g.Cost(e.V) > budget {
			continue // this edge can never be covered
		}
		wn := e.W / wScale
		if wn < 1 {
			continue // normalization discards tiny weights
		}
		i, j := classOf(cu), classOf(cv)
		u, v := e.U, e.V
		if i < j {
			i, j = j, i
			u, v = v, u
		}
		groups[key{i, j, classOf(wn)}] = append(groups[key{i, j, classOf(wn)}],
			wgraph.Edge{U: u, V: v, W: e.W})
	}

	for k, edges := range groups {
		var cand []int
		if k.i == k.j {
			cand = solveUniformClass(g, edges, budget)
		} else {
			cand = solveBipartiteClass(g, edges, budget, opts)
		}
		if len(cand) > 0 {
			cand = greedyComplete(nil, g, budget, cand)
			best = better(best, resultFor(g, cand))
		}
	}
	return best
}

// solveUniformClass handles G_{i,i,t}: all node costs in one power-of-two
// class, so the budget becomes a cardinality bound and DkS applies.
func solveUniformClass(g *wgraph.Graph, edges []wgraph.Edge, budget float64) []int {
	sub, toOld := classSubgraph(g, edges)
	// Cardinality bound: the cheapest node cost in the class lower-bounds
	// everyone (same class ⇒ within 2×); being conservative keeps
	// feasibility.
	maxCost := 0.0
	for v := 0; v < sub.NumNodes(); v++ {
		if c := sub.Cost(v); c > maxCost {
			maxCost = c
		}
	}
	if maxCost <= 0 {
		maxCost = 1
	}
	k := int(budget / maxCost)
	if k < 2 {
		k = 2
	}
	picked := dks.Solve(sub, k, dks.Options{Seed: 11})
	return trimToBudget(sub, picked, budget, toOld)
}

// solveBipartiteClass handles G_{i,j,t} with i > j: a bipartite graph with
// unit-class L costs and heavier R costs, solved by the best of P1, P2, P3.
func solveBipartiteClass(g *wgraph.Graph, edges []wgraph.Edge, budget float64, opts Options) []int {
	sub, toOld := classSubgraph(g, edges)
	nSub := sub.NumNodes()
	// L = cheaper endpoints, R = costlier endpoints (by construction edge.U
	// is the costlier class). Mark sides from the edge orientation.
	inR := make([]bool, nSub)
	oldToNew := make(map[int]int, nSub)
	for i, old := range toOld {
		oldToNew[old] = i
	}
	for _, e := range edges {
		inR[oldToNew[e.U]] = true
	}
	// Representative costs.
	var wR, cL float64 = 1, 1
	for v := 0; v < nSub; v++ {
		if inR[v] {
			if sub.Cost(v) > wR {
				wR = sub.Cost(v)
			}
		} else if sub.Cost(v) > cL {
			cL = sub.Cost(v)
		}
	}

	var bestNodes []int
	bestW := -1.0
	consider := func(nodes []int) {
		nodes = trimToBudgetLocal(sub, nodes, budget)
		if w := sub.InducedWeightOf(nodes); w > bestW {
			bestW = w
			bestNodes = nodes
		}
	}

	// P1: top-degree R nodes within half the budget, then top-degree-into-R′
	// L nodes with the other half.
	consider(procP1(sub, inR, budget, wR, cL))
	// P2: blow up R nodes into copies, DkS, then refill R by degree into L″.
	consider(procP2(sub, inR, budget, wR, cL, opts))
	// P3: the single best R node plus as many of its L neighbors as fit.
	consider(procP3(sub, inR, budget))

	out := make([]int, len(bestNodes))
	for i, v := range bestNodes {
		out[i] = toOld[v]
	}
	return out
}

func procP1(sub *wgraph.Graph, inR []bool, budget, wR, cL float64) []int {
	n := sub.NumNodes()
	var rNodes, lNodes []int
	for v := 0; v < n; v++ {
		if inR[v] {
			rNodes = append(rNodes, v)
		} else {
			lNodes = append(lNodes, v)
		}
	}
	sort.Slice(rNodes, func(i, j int) bool {
		return sub.WeightedDegree(rNodes[i]) > sub.WeightedDegree(rNodes[j])
	})
	takeR := int(budget / (2 * wR))
	if takeR < 1 {
		takeR = 1
	}
	if takeR > len(rNodes) {
		takeR = len(rNodes)
	}
	rSel := rNodes[:takeR]
	mark := make([]bool, n)
	for _, v := range rSel {
		mark[v] = true
	}
	sort.Slice(lNodes, func(i, j int) bool {
		return sub.WeightedDegreeInto(lNodes[i], mark) > sub.WeightedDegreeInto(lNodes[j], mark)
	})
	takeL := int(budget / (2 * cL))
	if takeL > len(lNodes) {
		takeL = len(lNodes)
	}
	return append(append([]int(nil), rSel...), lNodes[:takeL]...)
}

func procP2(sub *wgraph.Graph, inR []bool, budget, wR, cL float64, opts Options) []int {
	// Implicit blow-up: run DkS on a graph where each R node is divided
	// into w copies; equivalently scale R incident edge weights by 1/w and
	// allow selecting R nodes fractionally. We approximate with the
	// count-space greedy from the heuristic solver.
	n := sub.NumNodes()
	active := make([]bool, n)
	cint := make([]int, n)
	side := make([]bool, n)
	for v := 0; v < n; v++ {
		active[v] = true
		side[v] = !inR[v]
		if inR[v] {
			cint[v] = int(math.Max(1, math.Round(wR/cL)))
		} else {
			cint[v] = 1
		}
	}
	st := newCountState(sub, active, side, cint, make([]float64, n))
	k := int(budget / cL)
	st.greedyFill(nil, k)
	st.refill(true)
	st.refill(false)
	var out []int
	for v := 0; v < n; v++ {
		if st.s[v] == cint[v] && st.s[v] > 0 {
			out = append(out, v)
		}
	}
	return out
}

func procP3(sub *wgraph.Graph, inR []bool, budget float64) []int {
	n := sub.NumNodes()
	bestR, bestDeg := -1, -1.0
	for v := 0; v < n; v++ {
		if inR[v] && sub.Cost(v) <= budget {
			if d := sub.WeightedDegree(v); d > bestDeg {
				bestR, bestDeg = v, d
			}
		}
	}
	if bestR < 0 {
		return nil
	}
	out := []int{bestR}
	remaining := budget - sub.Cost(bestR)
	type nb struct {
		v int
		w float64
	}
	var nbs []nb
	sub.Neighbors(bestR, func(u int, w float64, _ int) {
		nbs = append(nbs, nb{u, w})
	})
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].w > nbs[j].w })
	seen := map[int]bool{bestR: true}
	for _, x := range nbs {
		if seen[x.v] {
			continue
		}
		if c := sub.Cost(x.v); c <= remaining {
			out = append(out, x.v)
			remaining -= c
			seen[x.v] = true
		}
	}
	return out
}

// classSubgraph builds the subgraph induced by the given edges with merged
// parallel weights, returning it and the new→old node mapping.
func classSubgraph(g *wgraph.Graph, edges []wgraph.Edge) (*wgraph.Graph, []int) {
	keep := make([]bool, g.NumNodes())
	for _, e := range edges {
		keep[e.U] = true
		keep[e.V] = true
	}
	oldToNew := make([]int, g.NumNodes())
	var toOld []int
	for v := range keep {
		if keep[v] {
			oldToNew[v] = len(toOld)
			toOld = append(toOld, v)
		} else {
			oldToNew[v] = -1
		}
	}
	sub := wgraph.New(len(toOld))
	for i, old := range toOld {
		sub.SetCost(i, g.Cost(old))
	}
	for _, e := range edges {
		sub.AddEdgeMerged(oldToNew[e.U], oldToNew[e.V], e.W)
	}
	return sub, toOld
}

// trimToBudget drops the lowest-contribution nodes until the set fits the
// budget, then maps to original IDs.
func trimToBudget(sub *wgraph.Graph, nodes []int, budget float64, toOld []int) []int {
	nodes = trimToBudgetLocal(sub, nodes, budget)
	out := make([]int, len(nodes))
	for i, v := range nodes {
		out[i] = toOld[v]
	}
	return out
}

func trimToBudgetLocal(sub *wgraph.Graph, nodes []int, budget float64) []int {
	cur := append([]int(nil), nodes...)
	for {
		var cost float64
		for _, v := range cur {
			cost += sub.Cost(v)
		}
		if cost <= budget+1e-9 || len(cur) == 0 {
			return cur
		}
		in := make([]bool, sub.NumNodes())
		for _, v := range cur {
			in[v] = true
		}
		worstI, worstScore := 0, math.Inf(1)
		for i, v := range cur {
			score := sub.WeightedDegreeInto(v, in) / math.Max(sub.Cost(v), 1e-9)
			if score < worstScore {
				worstI, worstScore = i, score
			}
		}
		cur[worstI] = cur[len(cur)-1]
		cur = cur[:len(cur)-1]
	}
}
