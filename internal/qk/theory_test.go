package qk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wgraph"
)

// bipartiteClassGraph builds the L/R structure the P1/P2/P3 procedures
// expect: cheap L nodes (cost cL), heavier R nodes (cost wR), edges only
// across.
func bipartiteClassGraph(rng *rand.Rand, nL, nR int, cL, wR float64, p float64) (*wgraph.Graph, []bool) {
	g := wgraph.New(nL + nR)
	inR := make([]bool, nL+nR)
	for v := 0; v < nL; v++ {
		g.SetCost(v, cL)
	}
	for v := nL; v < nL+nR; v++ {
		g.SetCost(v, wR)
		inR[v] = true
	}
	for u := 0; u < nL; u++ {
		for v := nL; v < nL+nR; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 1)
			}
		}
	}
	return g, inR
}

func nodeCost(g *wgraph.Graph, nodes []int) float64 {
	var c float64
	for _, v := range nodes {
		c += g.Cost(v)
	}
	return c
}

func TestProcP1RespectsBudgetHalves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g, inR := bipartiteClassGraph(rng, 12, 6, 1, 4, 0.4)
		budget := float64(8 + rng.Intn(20))
		nodes := procP1(g, inR, budget, 4, 1)
		// P1 spends ≤ B/2 on each side by construction; allow the +1 R
		// node minimum.
		if c := nodeCost(g, nodes); c > budget+4+1e-9 {
			t.Fatalf("trial %d: P1 cost %v far above budget %v", trial, c, budget)
		}
	}
}

func TestProcP3SingleHub(t *testing.T) {
	// A clear hub in R with many L neighbors: P3 must pick it plus
	// neighbors within budget.
	g := wgraph.New(7)
	inR := make([]bool, 7)
	g.SetCost(6, 4)
	inR[6] = true
	for v := 0; v < 6; v++ {
		g.SetCost(v, 1)
		g.AddEdge(v, 6, float64(v+1))
	}
	nodes := procP3(g, inR, 7) // hub (4) + 3 L nodes
	if len(nodes) != 4 {
		t.Fatalf("P3 picked %v, want hub + 3 neighbors", nodes)
	}
	if nodes[0] != 6 {
		t.Fatalf("P3 must start with the hub, got %v", nodes)
	}
	// Greedy by weight: neighbors 5, 4, 3 (weights 6, 5, 4).
	w := g.InducedWeightOf(nodes)
	if w != 6+5+4 {
		t.Fatalf("P3 weight %v, want 15", w)
	}
}

func TestProcP3EmptyR(t *testing.T) {
	g := wgraph.New(3)
	inR := make([]bool, 3)
	if nodes := procP3(g, inR, 10); nodes != nil {
		t.Fatalf("no R nodes: got %v", nodes)
	}
}

func TestProcP2Feasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		g, inR := bipartiteClassGraph(rng, 10, 5, 1, 3, 0.5)
		budget := float64(6 + rng.Intn(15))
		nodes := procP2(g, inR, budget, 3, 1, Options{}.withDefaults(15))
		seen := map[int]bool{}
		for _, v := range nodes {
			if seen[v] {
				t.Fatalf("trial %d: duplicate node %d", trial, v)
			}
			seen[v] = true
		}
	}
}

func TestTrimToBudgetLocal(t *testing.T) {
	g := wgraph.New(4)
	for v := 0; v < 4; v++ {
		g.SetCost(v, 3)
	}
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 1)
	out := trimToBudgetLocal(g, []int{0, 1, 2, 3}, 6)
	if c := nodeCost(g, out); c > 6+1e-9 {
		t.Fatalf("trim left cost %v", c)
	}
	// The heavy pair must survive.
	if w := g.InducedWeightOf(out); w != 10 {
		t.Fatalf("trim kept weight %v, want 10 (%v)", w, out)
	}
}

func TestClassSubgraphMapping(t *testing.T) {
	g := wgraph.New(5)
	for v := 0; v < 5; v++ {
		g.SetCost(v, float64(v+1))
	}
	g.AddEdge(1, 3, 7)
	g.AddEdge(3, 4, 2)
	sub, toOld := classSubgraph(g, []wgraph.Edge{{U: 1, V: 3, W: 7}})
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("subgraph size (%d,%d)", sub.NumNodes(), sub.NumEdges())
	}
	for i, old := range toOld {
		if sub.Cost(i) != g.Cost(old) {
			t.Fatalf("cost mapping broken at %d", i)
		}
	}
	if sub.TotalWeight() != 7 {
		t.Fatalf("weight %v", sub.TotalWeight())
	}
}

func TestTheoryNormalizationDropsUncoverableEdges(t *testing.T) {
	// An edge whose endpoints together exceed the budget cannot be covered
	// and must not dominate the weight normalization.
	g := wgraph.New(4)
	g.SetCost(0, 50)
	g.SetCost(1, 50)
	g.SetCost(2, 1)
	g.SetCost(3, 1)
	g.AddEdge(0, 1, 1e9) // uncoverable at budget 10
	g.AddEdge(2, 3, 5)
	res := SolveTheory(g, 10, Options{})
	if res.Weight != 5 {
		t.Fatalf("weight %v, want 5 (the coverable edge)", res.Weight)
	}
	checkFeasible(t, g, res, 10)
}

func TestTheoryUniformCostsUseDkS(t *testing.T) {
	// Uniform costs land every edge in an i==j class; the DkS path must
	// find the planted triangle.
	g := wgraph.New(9)
	for v := 0; v < 9; v++ {
		g.SetCost(v, 2)
	}
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(0, 2, 5)
	g.AddEdge(3, 4, 1)
	g.AddEdge(5, 6, 1)
	res := SolveTheory(g, 6, Options{})
	if res.Weight != 15 {
		t.Fatalf("weight %v, want 15 (triangle)", res.Weight)
	}
}

func TestTheoryMatchesHeuristicBallpark(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var theory, heur float64
	for trial := 0; trial < 15; trial++ {
		g := randomQK(rng, 25, 0.25, 6)
		budget := float64(8 + rng.Intn(20))
		theory += SolveTheory(g, budget, Options{Seed: int64(trial + 1)}).Weight
		heur += SolveHeuristic(g, budget, Options{Seed: int64(trial + 1)}).Weight
	}
	// The heuristic should dominate, but the theory solver must stay in
	// the same ballpark (it shares the greedy floor).
	if theory < 0.6*heur {
		t.Fatalf("theory solver aggregate %v below 0.6 × heuristic %v", theory, heur)
	}
	if theory > heur+1e-9 {
		t.Logf("theory (%v) beat heuristic (%v) — unusual but legal", theory, heur)
	}
}

func TestCountStateWeightConsistency(t *testing.T) {
	// The count-space weight must equal the explicit blow-up computation.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(6)
		g := wgraph.New(n)
		cint := make([]int, n)
		active := make([]bool, n)
		side := make([]bool, n)
		for v := 0; v < n; v++ {
			g.SetCost(v, float64(1+rng.Intn(4)))
			cint[v] = 1 + rng.Intn(4)
			active[v] = true
			side[v] = rng.Intn(2) == 0
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
		}
		st := newCountState(g, active, side, cint, make([]float64, n))
		for v := 0; v < n; v++ {
			st.s[v] = rng.Intn(cint[v] + 1)
		}
		// Explicit: sum over cross edges of w·sU·sV/(cU·cV).
		var want float64
		for _, e := range g.Edges() {
			if side[e.U] != side[e.V] {
				want += e.W * float64(st.s[e.U]) * float64(st.s[e.V]) /
					(float64(cint[e.U]) * float64(cint[e.V]))
			}
		}
		if got := st.weight(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: count weight %v != explicit %v", trial, got, want)
		}
	}
}

func TestRefillLeavesAtMostOnePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(8)
		g := wgraph.New(n)
		cint := make([]int, n)
		active := make([]bool, n)
		side := make([]bool, n)
		for v := 0; v < n; v++ {
			g.SetCost(v, 1)
			cint[v] = 1 + rng.Intn(5)
			active[v] = true
			side[v] = rng.Intn(2) == 0
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if side[u] != side[v] && rng.Float64() < 0.5 {
					g.AddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
		}
		st := newCountState(g, active, side, cint, make([]float64, n))
		for v := 0; v < n; v++ {
			st.s[v] = rng.Intn(cint[v] + 1)
		}
		before := st.weight()
		st.refill(true)
		st.refill(false)
		after := st.weight()
		if after < before-1e-9 {
			t.Fatalf("trial %d: refill decreased weight %v → %v", trial, before, after)
		}
		for _, left := range []bool{true, false} {
			partials := 0
			for v := 0; v < n; v++ {
				if side[v] == left && st.s[v] > 0 && st.s[v] < cint[v] {
					partials++
				}
			}
			if partials > 1 {
				t.Fatalf("trial %d: side %v has %d partials after refill", trial, left, partials)
			}
		}
	}
}
