package training

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/propset"
)

func TestCurveShape(t *testing.T) {
	c := Curve{Ceiling: 0.98, Tau: 200}
	if got := c.Accuracy(0); got != 0.5 {
		t.Fatalf("Accuracy(0) = %v, want 0.5 (coin flip)", got)
	}
	prev := 0.5
	for n := 50.0; n <= 5000; n += 50 {
		a := c.Accuracy(n)
		if a < prev {
			t.Fatalf("accuracy not monotone at n=%v", n)
		}
		if a > c.Ceiling+1e-12 {
			t.Fatalf("accuracy %v exceeds ceiling", a)
		}
		prev = a
	}
	// Saturation.
	if a := c.Accuracy(1e9); math.Abs(a-c.Ceiling) > 1e-6 {
		t.Fatalf("accuracy at huge n = %v, want ≈ ceiling", a)
	}
}

func TestExamplesForInvertsAccuracy(t *testing.T) {
	f := func(ceilSeed, tauSeed, targetSeed uint8) bool {
		c := Curve{
			Ceiling: 0.96 + 0.039*float64(ceilSeed)/255,
			Tau:     100 + 10*float64(tauSeed),
		}
		target := 0.6 + 0.35*float64(targetSeed)/255
		if target >= c.Ceiling {
			return math.IsInf(c.ExamplesFor(target), 1)
		}
		n := c.ExamplesFor(target)
		return math.Abs(c.Accuracy(n)-target) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExamplesForEdgeCases(t *testing.T) {
	c := Curve{Ceiling: 0.9, Tau: 100}
	if got := c.ExamplesFor(0.5); got != 0 {
		t.Fatalf("target 0.5 needs %v examples, want 0", got)
	}
	if !math.IsInf(c.ExamplesFor(0.95), 1) {
		t.Fatal("target above ceiling must be impossible")
	}
}

func TestModelCostAndTrain(t *testing.T) {
	m := Model{
		TargetAccuracy: 0.95,
		ExampleCost:    0.01,
		CurveFor: func(s propset.Set) Curve {
			return DefaultCurve(float64(s.Len()-1) / 5)
		},
	}
	u := propset.NewUniverse()
	easy := u.SetOf("a")
	hard := u.SetOf("a", "b", "c", "d", "e", "f")
	ce, ch := m.Cost(easy), m.Cost(hard)
	if ce <= 0 || ch <= 0 {
		t.Fatalf("costs must be positive: %v %v", ce, ch)
	}
	if ch <= ce {
		t.Fatalf("harder classifier must cost more: easy %v hard %v", ce, ch)
	}
	// Spending the estimated cost reaches the bar.
	if acc := m.Train(easy, ce); acc < 0.95-1e-9 {
		t.Fatalf("training at estimated cost reached only %v", acc)
	}
	// Spending nothing leaves a coin flip.
	if acc := m.Train(easy, 0); acc != 0.5 {
		t.Fatalf("zero spend accuracy = %v", acc)
	}
}

func TestModelDefaults(t *testing.T) {
	m := Model{CurveFor: func(propset.Set) Curve { return DefaultCurve(0.5) }}
	u := propset.NewUniverse()
	c := m.Cost(u.SetOf("x"))
	if math.IsInf(c, 1) || c <= 0 {
		t.Fatalf("default-target cost = %v", c)
	}
}

func TestDefaultCurveClamps(t *testing.T) {
	lo := DefaultCurve(-3)
	hi := DefaultCurve(7)
	if lo.Ceiling != DefaultCurve(0).Ceiling || hi.Tau != DefaultCurve(1).Tau {
		t.Fatal("difficulty clamping broken")
	}
	// Every default curve clears the 0.95 deployment bar.
	for d := 0.0; d <= 1.0; d += 0.1 {
		if DefaultCurve(d).Ceiling <= 0.95 {
			t.Fatalf("difficulty %v ceiling %v below deployment bar", d, DefaultCurve(d).Ceiling)
		}
	}
}
