// Package training simulates the classifier-construction process whose
// cost the BCC model abstracts: a binary classifier's accuracy grows with
// the number of labeled training examples following a saturating learning
// curve, examples are what the budget buys, and deployment requires
// reaching a target accuracy (the paper's platform deploys at 95% test
// accuracy).
//
// The learning curve is acc(n) = ceiling − (ceiling − 0.5) · exp(−n/τ):
// a coin-flip start, exponential approach to a per-classifier ceiling. τ
// (examples-to-learn) and the ceiling model the classifier's difficulty —
// "running shoes" needs more examples than "wooden table" — and yield the
// cost estimates analysts would hand the BCC solver.
package training

import (
	"math"

	"repro/internal/propset"
)

// Curve is a per-classifier learning curve.
type Curve struct {
	// Ceiling is the best reachable accuracy in (0.5, 1].
	Ceiling float64
	// Tau is the examples scale: accuracy closes 63% of its remaining gap
	// to the ceiling every Tau examples.
	Tau float64
}

// Accuracy returns the test accuracy after n labeled examples.
func (c Curve) Accuracy(n float64) float64 {
	if n <= 0 {
		return 0.5
	}
	return c.Ceiling - (c.Ceiling-0.5)*math.Exp(-n/c.Tau)
}

// ExamplesFor returns the number of labeled examples needed to reach the
// target accuracy, or +Inf if the ceiling is below the target.
func (c Curve) ExamplesFor(target float64) float64 {
	if target <= 0.5 {
		return 0
	}
	if target >= c.Ceiling {
		return math.Inf(1)
	}
	return -c.Tau * math.Log((c.Ceiling-target)/(c.Ceiling-0.5))
}

// Model maps classifiers to learning curves and prices their construction.
type Model struct {
	// TargetAccuracy is the deployment bar (paper: 0.95). Default 0.95.
	TargetAccuracy float64
	// ExampleCost converts labeled examples to budget units. Default 1/100
	// (one budget unit per hundred labels).
	ExampleCost float64
	// CurveFor supplies the learning curve of a classifier. Required.
	CurveFor func(propset.Set) Curve
}

func (m Model) target() float64 {
	if m.TargetAccuracy == 0 {
		return 0.95
	}
	return m.TargetAccuracy
}

func (m Model) exampleCost() float64 {
	if m.ExampleCost == 0 {
		return 0.01
	}
	return m.ExampleCost
}

// Cost estimates the construction cost of a classifier: the examples
// needed to reach the deployment accuracy, priced per example. Classifiers
// whose ceiling is below the bar are impractical (+Inf) — the paper's
// "round wooden with no context" case.
func (m Model) Cost(c propset.Set) float64 {
	curve := m.CurveFor(c)
	n := curve.ExamplesFor(m.target())
	if math.IsInf(n, 1) {
		return math.Inf(1)
	}
	return n * m.exampleCost()
}

// Train simulates constructing the classifier with a given budget slice
// (in budget units) and returns the deployed accuracy.
func (m Model) Train(c propset.Set, spend float64) float64 {
	curve := m.CurveFor(c)
	return curve.Accuracy(spend / m.exampleCost())
}

// DefaultCurve derives a plausible curve from a difficulty score in [0,1]:
// harder classifiers have lower ceilings and larger example scales.
// Difficulty 0 → ceiling 0.995, τ 150; difficulty 1 → ceiling 0.955,
// τ 1500. All curves clear a 0.95 deployment bar, matching the paper's
// report that estimates almost always sufficed to exceed 90–95%.
func DefaultCurve(difficulty float64) Curve {
	if difficulty < 0 {
		difficulty = 0
	}
	if difficulty > 1 {
		difficulty = 1
	}
	return Curve{
		Ceiling: 0.995 - 0.04*difficulty,
		Tau:     150 + 1350*difficulty,
	}
}
