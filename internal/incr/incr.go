// Package incr is the incremental-computation substrate: it turns a plan
// solved for one instance into a budget-feasible warm seed for a drifted
// sibling of that instance, and quantifies the drift itself.
//
// Production workloads change a little at a time — a few queries appear
// or vanish, utilities shift, the budget moves — so the previous plan is
// almost always a high-quality starting point. Every warm path in the
// system funnels through this package:
//
//   - the server seeds request- and sibling-cache warm starts
//     (internal/server, via the bccfp2/1 sibling index in
//     internal/solvecache),
//   - the gateway peer-fills a rendezvous-remapped owner from the
//     previous owner's cache (internal/cluster),
//   - the pipeline chains each tumbling window from the last published
//     plan (internal/pipeline),
//   - bccsolve -warm-from seeds a CLI solve from a saved plan file.
//
// Plans cross instance (and process) boundaries as classifier
// property-NAME sets, never propset IDs: IDs are universe-local interning
// accidents. Repair re-interns the names, drops what went stale, and
// restores budget feasibility — the receiving solver then only runs
// residual work (algo.Params.Warm).
package incr

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/model"
	"repro/internal/propset"
)

// Delta quantifies how one instance drifted from another. Queries are
// matched by their canonical conjunction (sorted property names), so the
// counts are independent of interning and insertion order.
type Delta struct {
	// Added is the number of conjunctions in next but not in prev.
	Added int
	// Removed is the number of conjunctions in prev but not in next.
	Removed int
	// Changed is the number of shared conjunctions whose utility differs.
	Changed int
	// Unchanged is the number of shared conjunctions with equal utility.
	Unchanged int
	// BudgetDelta is next.Budget() − prev.Budget().
	BudgetDelta float64
}

// Churn is the fraction of next's query set that did not carry over
// unchanged from prev — the drift rate warm-start speedups are measured
// against.
func (d Delta) Churn() float64 {
	n := d.Added + d.Changed + d.Unchanged
	if n == 0 {
		return 0
	}
	return float64(d.Added+d.Changed) / float64(n)
}

// Diff computes the query- and budget-level delta from prev to next.
func Diff(prev, next *model.Instance) Delta {
	prevU := make(map[string]float64, next.NumQueries())
	for _, q := range prev.Queries() {
		prevU[queryKey(prev.Universe(), q.Props)] = q.Utility
	}
	var d Delta
	for _, q := range next.Queries() {
		k := queryKey(next.Universe(), q.Props)
		u, ok := prevU[k]
		if !ok {
			d.Added++
			continue
		}
		delete(prevU, k)
		if u == q.Utility {
			d.Unchanged++
		} else {
			d.Changed++
		}
	}
	d.Removed = len(prevU)
	d.BudgetDelta = next.Budget() - prev.Budget()
	return d
}

// queryKey renders a property set as its sorted names, length-prefix
// separated — the same universe-independent canonical form bccfp2/1
// hashes.
func queryKey(u *propset.Universe, s propset.Set) string {
	names := make([]string, s.Len())
	for i, id := range s {
		names[i] = u.Name(id)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(strconv.Itoa(len(n)))
		b.WriteByte(':')
		b.WriteString(n)
	}
	return b.String()
}

// Repair re-interns a plan expressed as classifier property-name sets
// into in's universe and repairs it to a budget-feasible warm seed (see
// RepairSets). Classifiers naming a property in's universe has never seen
// are stale by construction and dropped.
func Repair(in *model.Instance, plan [][]string) []propset.Set {
	u := in.Universe()
	sets := make([]propset.Set, 0, len(plan))
	for _, names := range plan {
		ids := make([]propset.ID, 0, len(names))
		ok := true
		for _, n := range names {
			id, found := u.Lookup(n)
			if !found {
				ok = false
				break
			}
			ids = append(ids, id)
		}
		if ok && len(ids) > 0 {
			sets = append(sets, propset.New(ids...))
		}
	}
	return RepairSets(in, sets)
}

// RepairSets is the delta repair rule. Given candidate classifier sets
// from a previous plan, it returns a subset that is feasible and lean for
// the present instance:
//
//  1. Stale sets — duplicates, sets outside CL (infinite cost) — are
//     dropped.
//  2. Survivors are selected greedily by marginal-coverage-per-cost: a
//     candidate's score credits both queries it completes and partial
//     residual progress (so two half-covers of one query are kept as a
//     pair), and only candidates fitting the remaining budget are
//     eligible. This restores feasibility after a budget cut.
//  3. A reverse peel removes any selected set whose removal leaves
//     utility unchanged — budget spent on nothing is returned to the
//     solver.
//
// The result is deterministic (score, then cost, then canonical key) and
// never exceeds in.Budget(). An empty result is valid: it means nothing
// of the old plan survived, and the solve proceeds cold.
func RepairSets(in *model.Instance, sets []propset.Set) []propset.Set {
	// Stage 1: stale filter.
	cands := make([]propset.Set, 0, len(sets))
	seen := make(map[string]bool, len(sets))
	for _, s := range sets {
		if s.Empty() || seen[s.Key()] {
			continue
		}
		if math.IsInf(in.Cost(s), 1) {
			continue
		}
		seen[s.Key()] = true
		cands = append(cands, s)
	}
	if len(cands) == 0 {
		return nil
	}

	// Stage 2: greedy budget-feasible selection.
	t := cover.New(in)
	used := make([]bool, len(cands))
	var order []int
	for {
		best, bestScore, bestCost := -1, 0.0, 0.0
		for i, c := range cands {
			if used[i] {
				continue
			}
			cost := in.Cost(c)
			if t.Cost()+cost > in.Budget()+1e-9 {
				continue
			}
			score := progressScore(t, c)
			if score <= 0 {
				continue
			}
			if cost > 0 {
				score /= cost
			} else {
				score = math.Inf(1)
			}
			if best < 0 || score > bestScore ||
				(score == bestScore && (cost < bestCost ||
					(cost == bestCost && c.Key() < cands[best].Key()))) {
				best, bestScore, bestCost = i, score, cost
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		t.Add(cands[best])
		order = append(order, best)
	}

	// Stage 3: reverse peel of zero-contribution picks.
	kept := make([]bool, len(cands))
	for _, i := range order {
		kept[i] = true
	}
	for j := len(order) - 1; j >= 0; j-- {
		i := order[j]
		before := t.Utility()
		t.Remove(cands[i])
		if t.Utility() < before-1e-9 {
			t.Add(cands[i])
		} else {
			kept[i] = false
		}
	}

	var out []propset.Set
	for _, i := range order {
		if kept[i] {
			out = append(out, cands[i])
		}
	}
	return out
}

// progressScore is the repair greedy's utility proxy for adding c to t:
// each relevant uncovered query contributes its utility weighted by the
// fraction of its residual that c would test. Completing a residual earns
// the full remaining weight, so the score upper-bounds nothing but
// rewards joint covers that no single candidate completes.
func progressScore(t *cover.Tracker, c propset.Set) float64 {
	score := 0.0
	for _, qi := range t.RelevantQueries(c) {
		if t.Covered(qi) {
			continue
		}
		res := t.Residual(qi)
		if res.Empty() {
			continue
		}
		hit := res.Len() - res.Minus(c).Len()
		if hit == 0 {
			continue
		}
		score += t.Instance().Queries()[qi].Utility * float64(hit) / float64(res.Len())
	}
	return score
}

// Floor is the runtime quality floor every warm path is held to: the
// utility of a cold IG1 greedy solve. Incremental solving is a speedup,
// never a quality downgrade — a warm result below this floor must be
// discarded and re-solved cold (the PR 8 eval floors are calibrated
// against best-known utilities offline; IG1 is the online-computable
// stand-in every registered warm-capable solver already dominates).
func Floor(in *model.Instance) float64 {
	return core.SolveIG1(in).Utility
}
