package incr

import (
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/propset"
)

// TestWarmDriftSpeedup is the PR 10 acceptance benchmark in test form:
// on a 1%-churn re-solve of the synthetic-2000-b800 workload, a warm
// A^BCC run (seeded with the repaired previous plan, repair time
// included) must be at least 3x faster than the cold run while meeting
// the algorithm's registered EvalFloor against the cold utility. The
// same sweep is recorded in BENCH_PR10.json by make bench-json.
//
// The measured margin is wide (≥5x in development), so the 3x assertion
// holds under the race detector and loaded CI machines; both sides slow
// down by the same factor.
func TestWarmDriftSpeedup(t *testing.T) {
	const seed, nQueries, budget, churn = 1, 2000, 800.0, 0.01

	base := dataset.Synthetic(seed, nQueries, budget)
	baseRes := core.Solve(base, core.Options{Seed: seed})
	if baseRes.Utility <= 0 {
		t.Fatal("base solve found nothing; workload unusable")
	}
	var baseSets []propset.Set
	for _, c := range baseRes.Solution.Classifiers() {
		baseSets = append(baseSets, c.Props)
	}
	plan := planNames(base, baseSets)

	drift := dataset.SyntheticDrift(seed, nQueries, budget, churn)
	if d := Diff(base, drift); d.Added == 0 || d.Removed == 0 {
		t.Fatalf("drift produced no churn: %+v", d)
	}

	t0 := time.Now()
	cold := core.Solve(drift, core.Options{Seed: seed})
	coldDur := time.Since(t0)

	t0 = time.Now()
	warmSets := Repair(drift, plan)
	warm := core.Solve(drift, core.Options{Seed: seed, Warm: warmSets})
	warmDur := time.Since(t0)

	if len(warmSets) == 0 {
		t.Fatal("repair kept nothing of the previous plan at 1% churn")
	}
	if warm.Cost > budget+1e-9 {
		t.Errorf("warm solve blew the budget: %v > %v", warm.Cost, budget)
	}

	d, ok := algo.Lookup("abcc")
	if !ok {
		t.Fatal("abcc not registered")
	}
	floor := d.EvalFloor
	if ratio := warm.Utility / cold.Utility; ratio < floor {
		t.Errorf("warm utility ratio %.4f below EvalFloor %.2f (warm=%v cold=%v)",
			ratio, floor, warm.Utility, cold.Utility)
	}
	if speedup := float64(coldDur) / float64(warmDur); speedup < 3 {
		t.Errorf("warm speedup %.2fx below the 3x acceptance bar (cold=%v warm=%v)",
			speedup, coldDur, warmDur)
	} else {
		t.Logf("warm speedup %.2fx (cold=%v warm=%v ratio=%.4f)",
			speedup, coldDur, warmDur, warm.Utility/cold.Utility)
	}
}
