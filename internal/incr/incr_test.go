package incr

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/propset"
)

func quickstart(budget float64) *model.Instance {
	b := model.NewBuilder()
	b.AddQuery(8, "wooden", "table")
	b.AddQuery(5, "running", "shoes")
	b.SetCost(4, "wooden")
	b.SetCost(2, "table")
	b.SetCost(3, "wooden", "table")
	b.SetCost(6, "running", "shoes")
	return b.MustInstance(budget)
}

func planNames(in *model.Instance, sets []propset.Set) [][]string {
	u := in.Universe()
	var out [][]string
	for _, s := range sets {
		names := make([]string, s.Len())
		for i, id := range s {
			names[i] = u.Name(id)
		}
		out = append(out, names)
	}
	return out
}

func TestDiff(t *testing.T) {
	prev := quickstart(9)

	b := model.NewBuilder()
	b.AddQuery(8, "wooden", "table")  // unchanged
	b.AddQuery(7, "running", "shoes") // utility 5 → 7
	b.AddQuery(2, "leather", "boots") // added
	next := b.MustInstance(12)

	d := Diff(prev, next)
	want := Delta{Added: 1, Removed: 0, Changed: 1, Unchanged: 1, BudgetDelta: 3}
	if d != want {
		t.Errorf("Diff = %+v, want %+v", d, want)
	}
	if got, want := d.Churn(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Churn = %v, want %v", got, want)
	}

	rd := Diff(next, prev)
	if rd.Added != 0 || rd.Removed != 1 || rd.Changed != 1 || rd.Unchanged != 1 || rd.BudgetDelta != -3 {
		t.Errorf("reverse Diff = %+v", rd)
	}
}

func TestDiffIdentical(t *testing.T) {
	d := Diff(quickstart(9), quickstart(9))
	if d != (Delta{Unchanged: 2}) {
		t.Errorf("identical Diff = %+v", d)
	}
	if d.Churn() != 0 {
		t.Errorf("identical churn = %v", d.Churn())
	}
}

// Diff matches queries by canonical conjunction, not by interning order.
func TestDiffIgnoresInterningOrder(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(5, "shoes", "running")
	b.AddQuery(8, "table", "wooden")
	reordered := b.MustInstance(9)
	if d := Diff(quickstart(9), reordered); d != (Delta{Unchanged: 2}) {
		t.Errorf("reordered Diff = %+v", d)
	}
}

// A plan that still fits is kept whole; sets naming unknown properties or
// priced out of CL are dropped, never fatal.
func TestRepairDropsStale(t *testing.T) {
	in := quickstart(9)
	plan := [][]string{
		{"wooden", "table"},      // valid
		{"running", "shoes"},     // valid
		{"leather"},              // unknown property: stale
		{"wooden", "never-seen"}, // partially unknown: stale
		{},                       // empty: dropped
	}
	got := Repair(in, plan)
	if len(got) != 2 {
		t.Fatalf("Repair kept %d sets, want 2: %v", len(got), got)
	}
	var cost float64
	for _, s := range got {
		cost += in.Cost(s)
	}
	if cost > in.Budget()+1e-9 {
		t.Errorf("repaired plan cost %v exceeds budget %v", cost, in.Budget())
	}
}

// After a budget cut the repaired plan must fit the new budget and keep
// the highest-value part of the old plan.
func TestRepairRestoresBudgetFeasibility(t *testing.T) {
	in := quickstart(9)
	full := [][]string{{"wooden", "table"}, {"running", "shoes"}} // cost 3 + 6 = 9
	tight := in.WithBudget(5)
	got := Repair(tight, full)
	if len(got) != 1 {
		t.Fatalf("Repair kept %d sets under budget 5, want 1: %v", len(got), got)
	}
	// {wooden,table} covers utility 8 at cost 3 — the better pick.
	if c := tight.Cost(got[0]); c != 3 {
		t.Errorf("Repair kept the wrong set (cost %v), want the cost-3 cover", c)
	}
}

// Two sets that only cover a query jointly must survive repair together —
// a per-set marginal-gain rule would drop both.
func TestRepairKeepsJointCovers(t *testing.T) {
	in := quickstart(9)
	got := Repair(in, [][]string{{"wooden"}, {"table"}}) // jointly cover {wooden,table}
	if len(got) != 2 {
		t.Fatalf("Repair kept %d of a joint pair, want 2: %v", len(got), got)
	}
	tr := cover.New(in)
	for _, s := range got {
		tr.Add(s)
	}
	if tr.Utility() != 8 {
		t.Errorf("joint pair utility = %v, want 8", tr.Utility())
	}
}

// Sets contributing nothing (their coverage is already paid for by other
// picks) are peeled so the solver gets the budget back.
func TestRepairPeelsZeroContribution(t *testing.T) {
	in := quickstart(9)
	got := Repair(in, [][]string{{"wooden", "table"}, {"wooden"}, {"table"}})
	if len(got) != 1 {
		t.Fatalf("Repair kept %d sets, want just the 2-cover: %v", len(got), got)
	}
	if got[0].Len() != 2 {
		t.Errorf("Repair kept %v, want the {wooden,table} cover", got[0])
	}
}

func TestRepairEmptyAndNil(t *testing.T) {
	in := quickstart(9)
	if got := Repair(in, nil); got != nil {
		t.Errorf("Repair(nil) = %v, want nil", got)
	}
	if got := RepairSets(in, nil); got != nil {
		t.Errorf("RepairSets(nil) = %v, want nil", got)
	}
}

func TestRepairDeterministic(t *testing.T) {
	in := dataset.Synthetic(3, 200, 120)
	res := core.Solve(in, core.Options{Seed: 1})
	var sets []propset.Set
	for _, c := range res.Solution.Classifiers() {
		sets = append(sets, c.Props)
	}
	plan := planNames(in, sets)
	tight := in.WithBudget(in.Budget() / 3)
	first := Repair(tight, plan)
	for i := 0; i < 5; i++ {
		again := Repair(tight, plan)
		if len(again) != len(first) {
			t.Fatalf("run %d kept %d sets, first kept %d", i, len(again), len(first))
		}
		for j := range again {
			if !again[j].Equal(first[j]) {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, again[j], first[j])
			}
		}
	}
}

// Floor is the IG1 greedy utility — the bar every warm path must clear.
func TestFloor(t *testing.T) {
	in := quickstart(9)
	if got, want := Floor(in), core.SolveIG1(in).Utility; got != want {
		t.Errorf("Floor = %v, want IG1 utility %v", got, want)
	}
	if Floor(in) <= 0 {
		t.Error("Floor on a solvable instance must be positive")
	}
}
