// Package knapsack implements 0/1 knapsack solvers: an exact
// dynamic program for integer weights, a (1+ε)-approximation scheme
// (FPTAS) for arbitrary weights, and a density-greedy baseline.
//
// In the BCC pipeline, the BCC(1) subproblem — cover each query with the
// single classifier identical to it — is exactly knapsack (Theorem 3.1 and
// Observation 4.3 of the paper): items are classifiers, weights are
// construction costs, values are the aggregated utilities of the queries
// each classifier 1-covers, and the capacity is the budget.
package knapsack

import (
	"math"
	"sort"

	"repro/internal/guard"
)

// Item is one selectable object. Payload is an opaque caller tag carried
// through to the result (typically an index into a caller-side slice).
type Item struct {
	Value   float64
	Weight  float64
	Payload int
}

// Result is a solved knapsack: the chosen item indices (into the input
// slice, ascending) and their total value and weight.
type Result struct {
	Chosen []int
	Value  float64
	Weight float64
}

// epsilon used for floating-point capacity comparisons.
const feasEps = 1e-9

// SolveGreedy sorts items by value density and takes them while they fit.
// It additionally considers the single most valuable fitting item, which
// restores the classic 2-approximation when the greedy prefix is weak.
func SolveGreedy(items []Item, capacity float64) Result {
	order := make([]int, 0, len(items))
	for i, it := range items {
		if it.Weight <= capacity+feasEps && it.Value > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		da := density(ia)
		db := density(ib)
		if da != db {
			return da > db
		}
		return ia.Value > ib.Value
	})
	var res Result
	remaining := capacity
	for _, i := range order {
		if items[i].Weight <= remaining+feasEps {
			res.Chosen = append(res.Chosen, i)
			res.Value += items[i].Value
			res.Weight += items[i].Weight
			remaining -= items[i].Weight
		}
	}
	// Best single item fallback.
	best, bestVal := -1, res.Value
	for _, i := range order {
		if items[i].Value > bestVal {
			best, bestVal = i, items[i].Value
		}
	}
	if best >= 0 {
		res = Result{Chosen: []int{best}, Value: items[best].Value, Weight: items[best].Weight}
	}
	sort.Ints(res.Chosen)
	return res
}

func density(it Item) float64 {
	if it.Weight <= 0 {
		return math.Inf(1)
	}
	return it.Value / it.Weight
}

// SolveExactInt solves the knapsack exactly by dynamic programming over
// integer weights. Weights must be non-negative integers (after the caller's
// own scaling); non-integer weights are rounded up, which keeps the result
// feasible but possibly suboptimal. The DP costs O(n·capacity) time and
// O(n·capacity) bits of parent-tracking, so use it only for moderate
// capacities; SolveFPTAS covers the rest.
func SolveExactInt(items []Item, capacity int) Result {
	return solveExactIntGuard(nil, items, capacity)
}

func solveExactIntGuard(g *guard.Guard, items []Item, capacity int) Result {
	if capacity < 0 {
		return Result{}
	}
	w := make([]int, len(items))
	for i, it := range items {
		w[i] = int(math.Ceil(it.Weight - feasEps))
		if w[i] < 0 {
			w[i] = 0
		}
	}
	// dp[c] = best value at weight ≤ c; per-item choice rows are bitsets so
	// the table stays compact (1 bit per cell) even at large capacities.
	dp := make([]float64, capacity+1)
	words := (capacity + 64) / 64
	choice := make([]uint64, len(items)*words)
	for i, it := range items {
		// Checking once per DP row keeps the overhead off the inner cells;
		// on a trip the greedy answer is always feasible.
		if g.Tripped() {
			return SolveGreedy(items, float64(capacity))
		}
		if it.Value <= 0 {
			continue
		}
		row := choice[i*words : (i+1)*words]
		for c := capacity; c >= w[i]; c-- {
			if cand := dp[c-w[i]] + it.Value; cand > dp[c] {
				dp[c] = cand
				row[c/64] |= 1 << uint(c%64)
			}
		}
	}
	// Reconstruct.
	var res Result
	c := capacity
	for i := len(items) - 1; i >= 0; i-- {
		if choice[i*words+c/64]&(1<<uint(c%64)) != 0 {
			res.Chosen = append(res.Chosen, i)
			res.Value += items[i].Value
			res.Weight += items[i].Weight
			c -= w[i]
		}
	}
	sort.Ints(res.Chosen)
	return res
}

// SolveFPTAS returns a (1+eps)-approximate solution for arbitrary
// non-negative weights and values, via the classic value-scaling dynamic
// program (Theorem 2.3 of the paper, following [65]). eps must be positive;
// values ≤ 0 and items that cannot fit are ignored.
func SolveFPTAS(items []Item, capacity float64, eps float64) Result {
	return solveFPTASGuard(nil, items, capacity, eps)
}

func solveFPTASGuard(g *guard.Guard, items []Item, capacity float64, eps float64) Result {
	if eps <= 0 {
		eps = 0.01
	}
	// Collect usable items.
	idx := make([]int, 0, len(items))
	vmax := 0.0
	for i, it := range items {
		if it.Value > 0 && it.Weight <= capacity+feasEps {
			idx = append(idx, i)
			if it.Value > vmax {
				vmax = it.Value
			}
		}
	}
	if len(idx) == 0 {
		return Result{}
	}
	n := len(idx)
	scale := eps * vmax / float64(n)
	if scale <= 0 {
		scale = 1
	}
	// Scaled integer values; total bounded by n·(n/eps). If the DP table
	// would be too large, coarsen the scale: this trades approximation
	// precision for memory but never loses feasibility.
	const maxCells = 32 << 20
	sv := make([]int, n)
	total := 0
	for {
		total = 0
		for j, i := range idx {
			sv[j] = int(items[i].Value / scale)
			total += sv[j]
		}
		if float64(n)*float64(total+1) <= maxCells {
			break
		}
		scale *= 2
	}
	// minw[v] = minimum weight achieving scaled value exactly v.
	const inf = math.MaxFloat64
	minw := make([]float64, total+1)
	for v := 1; v <= total; v++ {
		minw[v] = inf
	}
	choice := make([][]bool, n)
	for j := range idx {
		if g.Tripped() {
			return SolveGreedy(items, capacity)
		}
		choice[j] = make([]bool, total+1)
		it := items[idx[j]]
		for v := total; v >= sv[j]; v-- {
			if minw[v-sv[j]] == inf {
				continue
			}
			if cand := minw[v-sv[j]] + it.Weight; cand < minw[v] {
				minw[v] = cand
				choice[j][v] = true
			}
		}
	}
	bestV := 0
	for v := total; v >= 0; v-- {
		if minw[v] <= capacity+feasEps {
			bestV = v
			break
		}
	}
	var res Result
	v := bestV
	for j := n - 1; j >= 0; j-- {
		if v >= sv[j] && choice[j][v] {
			i := idx[j]
			res.Chosen = append(res.Chosen, i)
			res.Value += items[i].Value
			res.Weight += items[i].Weight
			v -= sv[j]
		}
	}
	sort.Ints(res.Chosen)
	return res
}

// Solve picks a solver automatically: the exact integer DP when all
// weights are integral and the capacity is small enough for the DP table;
// the FPTAS for moderate item counts; and the density greedy for huge
// inputs, where the value-scaling FPTAS would have to coarsen its grid so
// far that its guarantee evaporates. The greedy's loss is bounded by the
// largest single item value, which is negligible in the BCC regime (many
// small classifiers against a large budget).
func Solve(items []Item, capacity float64, eps float64) Result {
	return SolveGuard(nil, items, capacity, eps)
}

// SolveGuard is Solve with cooperative cancellation: when the guard trips
// mid-DP the solver falls back to the density greedy, whose answer is
// always budget-feasible. A nil guard never trips.
func SolveGuard(g *guard.Guard, items []Item, capacity float64, eps float64) Result {
	guard.Inject("knapsack.solve")
	const maxDPCells = 512 << 20 // bitset rows: 512M cells ≈ 64 MB
	const maxFPTASItems = 3000
	integral := capacity == math.Trunc(capacity)
	for _, it := range items {
		if it.Weight != math.Trunc(it.Weight) {
			integral = false
			break
		}
	}
	if integral && capacity >= 0 &&
		float64(len(items))*(capacity+1) <= maxDPCells {
		return solveExactIntGuard(g, items, int(capacity))
	}
	if len(items) <= maxFPTASItems {
		return solveFPTASGuard(g, items, capacity, eps)
	}
	return SolveGreedy(items, capacity)
}

// BruteForce enumerates all subsets; for tests on tiny inputs only.
func BruteForce(items []Item, capacity float64) Result {
	n := len(items)
	if n > 25 {
		panic("knapsack: BruteForce limited to 25 items")
	}
	var best Result
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += items[i].Value
				w += items[i].Weight
			}
		}
		if w <= capacity+feasEps && v > best.Value {
			best = Result{Value: v, Weight: w}
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					best.Chosen = append(best.Chosen, i)
				}
			}
		}
	}
	return best
}
