package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestExactSmall(t *testing.T) {
	items := []Item{
		{Value: 60, Weight: 10},
		{Value: 100, Weight: 20},
		{Value: 120, Weight: 30},
	}
	res := SolveExactInt(items, 50)
	if !almostEq(res.Value, 220) {
		t.Fatalf("Value = %v, want 220", res.Value)
	}
	if res.Weight > 50 {
		t.Fatalf("Weight = %v exceeds capacity", res.Weight)
	}
}

func TestExactZeroCapacity(t *testing.T) {
	items := []Item{{Value: 5, Weight: 1}, {Value: 3, Weight: 0}}
	res := SolveExactInt(items, 0)
	// Only the zero-weight item fits.
	if !almostEq(res.Value, 3) {
		t.Fatalf("Value = %v, want 3", res.Value)
	}
}

func TestExactNoItems(t *testing.T) {
	res := SolveExactInt(nil, 10)
	if res.Value != 0 || len(res.Chosen) != 0 {
		t.Fatalf("empty input gave %+v", res)
	}
}

func TestNegativeCapacity(t *testing.T) {
	res := SolveExactInt([]Item{{Value: 1, Weight: 1}}, -1)
	if res.Value != 0 {
		t.Fatalf("negative capacity gave %+v", res)
	}
}

func TestGreedyTakesBestSingle(t *testing.T) {
	// Classic greedy trap: many light low-value items vs one heavy jackpot.
	items := []Item{
		{Value: 1, Weight: 1}, {Value: 1, Weight: 1},
		{Value: 100, Weight: 100},
	}
	res := SolveGreedy(items, 100)
	if !almostEq(res.Value, 100) {
		t.Fatalf("greedy Value = %v, want 100 (best single)", res.Value)
	}
}

func TestGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		items := randomItems(rng, 30)
		cap := rng.Float64() * 50
		res := SolveGreedy(items, cap)
		if res.Weight > cap+1e-6 {
			t.Fatalf("greedy exceeded capacity: %v > %v", res.Weight, cap)
		}
		checkAccounting(t, items, res)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Value:  float64(rng.Intn(30)),
				Weight: float64(rng.Intn(15)),
			}
		}
		cap := rng.Intn(40)
		got := SolveExactInt(items, cap)
		want := BruteForce(items, float64(cap))
		if !almostEq(got.Value, want.Value) {
			t.Fatalf("trial %d: exact=%v brute=%v items=%v cap=%d",
				trial, got.Value, want.Value, items, cap)
		}
		checkAccounting(t, items, got)
	}
}

func TestFPTASWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const eps = 0.1
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Value:  rng.Float64() * 100,
				Weight: rng.Float64() * 20,
			}
		}
		cap := rng.Float64() * 60
		got := SolveFPTAS(items, cap, eps)
		opt := BruteForce(items, cap)
		if got.Weight > cap+1e-6 {
			t.Fatalf("FPTAS exceeded capacity: %v > %v", got.Weight, cap)
		}
		if got.Value < opt.Value*(1-eps)-1e-9 {
			t.Fatalf("trial %d: FPTAS value %v below (1-eps)*OPT %v",
				trial, got.Value, opt.Value*(1-eps))
		}
		checkAccounting(t, items, got)
	}
}

func TestFPTASZeroValueItemsIgnored(t *testing.T) {
	items := []Item{{Value: 0, Weight: 1}, {Value: 5, Weight: 2}}
	res := SolveFPTAS(items, 10, 0.1)
	if len(res.Chosen) != 1 || res.Chosen[0] != 1 {
		t.Fatalf("Chosen = %v, want [1]", res.Chosen)
	}
}

func TestSolveAutoExactPath(t *testing.T) {
	items := []Item{{Value: 10, Weight: 3}, {Value: 7, Weight: 4}, {Value: 4, Weight: 2}}
	res := Solve(items, 6, 0.05)
	// Optimal: items 0+3 → wait, weights 3+2=5 value 14.
	if !almostEq(res.Value, 14) {
		t.Fatalf("Solve = %v, want 14", res.Value)
	}
}

func TestSolveAutoFractionalPath(t *testing.T) {
	items := []Item{{Value: 10, Weight: 3.5}, {Value: 7, Weight: 4.25}, {Value: 4, Weight: 2}}
	res := Solve(items, 6, 0.05)
	if res.Weight > 6+1e-9 {
		t.Fatalf("infeasible: %v", res.Weight)
	}
	if !almostEq(res.Value, 14) { // 10 + 4 at weight 5.5
		t.Fatalf("Solve = %v, want 14", res.Value)
	}
}

func TestLargeCapacityFallsBackToFPTAS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 100)
	res := Solve(items, 1e9, 0.05) // DP table would be enormous
	var total float64
	for _, it := range items {
		total += it.Value
	}
	if !almostEq(res.Value, total) {
		t.Fatalf("everything fits: value %v, want %v", res.Value, total)
	}
}

func checkAccounting(t *testing.T, items []Item, res Result) {
	t.Helper()
	var v, w float64
	seen := map[int]bool{}
	for _, i := range res.Chosen {
		if seen[i] {
			t.Fatalf("item %d chosen twice", i)
		}
		seen[i] = true
		v += items[i].Value
		w += items[i].Weight
	}
	if !almostEq(v, res.Value) || !almostEq(w, res.Weight) {
		t.Fatalf("accounting mismatch: sum (%v,%v) vs reported (%v,%v)",
			v, w, res.Value, res.Weight)
	}
}

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Value:  rng.Float64() * 50,
			Weight: rng.Float64() * 10,
		}
	}
	return items
}

func BenchmarkExact1000x5000(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	items := make([]Item, 1000)
	for i := range items {
		items[i] = Item{Value: float64(1 + rng.Intn(50)), Weight: float64(1 + rng.Intn(50))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveExactInt(items, 5000)
	}
}

func BenchmarkFPTAS500(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	items := randomItems(rng, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveFPTAS(items, 100, 0.05)
	}
}
