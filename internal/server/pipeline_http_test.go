package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

// newPipelineServer is newJobsServer plus an opened WAL directory, with
// a fast window so tests see publishes quickly.
func newPipelineServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.PipelineWindow == 0 {
		cfg.PipelineWindow = 100 * time.Millisecond
	}
	s, ts := newJobsServer(t, t.TempDir(), cfg)
	if err := s.OpenPipeline(t.TempDir(), t.Logf); err != nil {
		t.Fatalf("OpenPipeline: %v", err)
	}
	return s, ts
}

func ingestLines(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d\tpipeline term%d\t%d", 1717243200+i, i, i+1)
	}
	return out
}

func TestPipelineRoutesDisabledWithoutWALDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{Lines: ingestLines(1)})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, data)
	}
	r2, err := http.Get(ts.URL + "/v1/plan/current")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotImplemented {
		t.Fatalf("plan/current = %d", r2.StatusCode)
	}
}

func TestIngestThenPlanCurrentRoundtrip(t *testing.T) {
	_, ts := newPipelineServer(t, Config{})

	// Before any publish the plan endpoint is a clean 404, not an error.
	r0, err := http.Get(ts.URL + "/v1/plan/current")
	if err != nil {
		t.Fatal(err)
	}
	r0.Body.Close()
	if r0.StatusCode != http.StatusNotFound {
		t.Fatalf("plan/current before ingest = %d, want 404", r0.StatusCode)
	}

	resp, data := postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{Lines: ingestLines(3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, data)
	}
	var ack api.IngestResponse
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatalf("decoding ingest response %s: %v", data, err)
	}
	if ack.Accepted != 3 {
		t.Fatalf("accepted %d of 3 lines: %s", ack.Accepted, data)
	}

	var plan api.CurrentPlanResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/plan/current")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &plan); err != nil {
				t.Fatalf("decoding plan %s: %v", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no plan published after 10s; last status %d: %s", r.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if plan.Seq < 1 || plan.Plan == nil || plan.WindowRecords != 3 {
		t.Fatalf("plan = %+v, want seq>=1 covering 3 records", plan)
	}
	if plan.Plan.Utility <= 0 {
		t.Errorf("published plan has utility %v, want > 0", plan.Plan.Utility)
	}
	if plan.AgeSeconds < 0 {
		t.Errorf("plan age %v, want >= 0", plan.AgeSeconds)
	}

	// The statz snapshot grows a pipeline section once the pipeline is
	// open, with the conservation counters visible.
	r, err := http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st Statz
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Pipeline == nil {
		t.Fatal("statz has no pipeline section")
	}
	if st.Pipeline.RecordsTotal != 3 || st.Pipeline.WindowsSolved < 1 {
		t.Errorf("statz pipeline = %+v, want 3 records in >=1 solved window", st.Pipeline)
	}
}

func TestIngestRejectsMalformedLine(t *testing.T) {
	_, ts := newPipelineServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{
		Lines: []string{"1717243200\tfine query", "no tab separator"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "line 1") {
		t.Errorf("error %s does not name the offending line", data)
	}
}

func TestIngestShedsWithRetryAfterWhenBacklogFull(t *testing.T) {
	// A huge window keeps the scheduler from draining mid-test: after
	// the immediate startup tick (empty WAL) the next tick is an hour
	// out, so backlog accounting is deterministic.
	_, ts := newPipelineServer(t, Config{
		PipelineWindow:     time.Hour,
		PipelineMaxBacklog: 2,
	})
	resp, data := postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{Lines: ingestLines(2)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest within backlog = %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{Lines: ingestLines(1)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest over backlog = %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "3600" {
		t.Errorf("Retry-After = %q, want one window (3600)", got)
	}
	var e struct {
		RetryAfterSeconds int `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(data, &e); err != nil || e.RetryAfterSeconds != 3600 {
		t.Errorf("shed body %s, want retry_after_seconds 3600 (err %v)", data, err)
	}
}
