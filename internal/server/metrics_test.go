package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrape(t *testing.T, ts *httptest.Server) (string, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, out := solve(t, ts, SolveRequest{Instance: quickstartFormat(10)})
	if resp.StatusCode != http.StatusOK || out.Status != "complete" {
		t.Fatalf("solve = %d %q", resp.StatusCode, out.Status)
	}

	body, ct := scrape(t, ts)
	if want := "text/plain; version=0.0.4; charset=utf-8"; ct != want {
		t.Errorf("Content-Type = %q, want %q", ct, want)
	}
	for _, want := range []string{
		"# TYPE bcc_solves_total counter",
		"bcc_solves_total 1",
		"# TYPE bcc_http_request_seconds histogram",
		`bcc_http_requests_total{code="200",route="/v1/solve"} 1`,
		`bcc_solve_seconds_count{algo="abcc",status="complete"} 1`,
		"# TYPE bcc_pool_workers gauge",
		"bcc_uptime_seconds",
		"bcc_goroutines",
		"bcc_cache_entries 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// The /metrics scrape itself is instrumented, so a second scrape must
// see the first one's route series.
func TestMetricsRouteSelfObservation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	scrape(t, ts)
	body, _ := scrape(t, ts)
	if want := `bcc_http_requests_total{code="200",route="/metrics"} 1`; !strings.Contains(body, want) {
		t.Errorf("/metrics missing %q\n%s", want, body)
	}
}

func TestStatzSnapshotFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	solve(t, ts, SolveRequest{Instance: quickstartFormat(10)})

	st := statz(t, ts)
	if st.Goroutines <= 0 {
		t.Errorf("Goroutines = %d, want > 0", st.Goroutines)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("UptimeSeconds = %v, want >= 0", st.UptimeSeconds)
	}
	if st.Build.GoVersion == "" {
		t.Errorf("Build.GoVersion empty: %+v", st.Build)
	}
	if st.Solves > st.Requests {
		t.Errorf("snapshot invariant violated: solves %d > requests %d", st.Solves, st.Requests)
	}
	if st.Solves != 1 || st.Requests != 1 {
		t.Errorf("solves/requests = %d/%d, want 1/1", st.Solves, st.Requests)
	}
}

func TestDebugHandler(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.DebugHandler())
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
