package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/algo"
)

// TestNewSolverFamiliesServed runs the two PR 7 families end to end
// through the HTTP path: both must answer 200 with a complete,
// budget-feasible plan.
func TestNewSolverFamiliesServed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, name := range []string{"evo", "submod"} {
		resp, out := solve(t, ts, SolveRequest{Instance: quickstartFormat(8), Algo: name, IncludePlan: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200", name, resp.StatusCode)
		}
		if out.Algo != name {
			t.Errorf("%s: response algo = %q", name, out.Algo)
		}
		if out.Status != "complete" {
			t.Errorf("%s: status = %q, want complete", name, out.Status)
		}
		if out.Utility <= 0 {
			t.Errorf("%s: utility = %v, want > 0", name, out.Utility)
		}
		if out.Cost > out.Budget+1e-9 {
			t.Errorf("%s: cost %v exceeds budget %v", name, out.Cost, out.Budget)
		}
		if len(out.Classifiers) == 0 {
			t.Errorf("%s: include_plan returned no classifiers", name)
		}
		if c := planCost(out); c != out.Cost {
			t.Errorf("%s: plan cost %v != reported cost %v", name, c, out.Cost)
		}
	}
}

// TestUnknownAlgo400ListsSupported pins the registry-driven error shape:
// a single 400 whose message enumerates every servable name, so a
// client typo is self-correcting.
func TestUnknownAlgo400ListsSupported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: quickstartFormat(8), Algo: "anneal"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %s: %v", data, err)
	}
	if !strings.Contains(e.Error, `"anneal"`) || !strings.Contains(e.Error, "supported:") {
		t.Errorf("error %q does not name the bad algo and the supported set", e.Error)
	}
	want := strings.Join(algo.ServableNames(), ", ")
	if !strings.Contains(e.Error, want) {
		t.Errorf("error %q does not list the registry's servable names %q", e.Error, want)
	}
}
