package server

import "sync"

// Pool is a bounded worker pool with a bounded admission queue. Admission
// is non-blocking: when every worker is busy and the queue is full,
// TrySubmit reports false and the caller sheds load (the HTTP layer
// answers 429) instead of letting latency grow without bound.
type Pool struct {
	mu     sync.RWMutex
	closed bool
	jobs   chan func()
	wg     sync.WaitGroup

	workers int
}

// NewPool starts workers goroutines consuming from a queue of the given
// capacity. workers < 1 is clamped to 1; queue < 0 to 0 (admission then
// succeeds only when a worker is ready to receive immediately).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan func(), queue), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// TrySubmit enqueues job without blocking. It reports false when the
// queue is full or the pool is closed.
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- job:
		return true
	default:
		return false
	}
}

// Close stops admission, drains every queued job, and waits for the
// workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth reports the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueCapacity reports the admission queue capacity.
func (p *Pool) QueueCapacity() int { return cap(p.jobs) }

// PoolStats is a point-in-time view of the pool, read as one struct so
// statz consumers never mix fields from different instants.
type PoolStats struct {
	Workers       int `json:"workers"`
	QueueCapacity int `json:"queue_capacity"`
	QueueDepth    int `json:"queue_depth"`
}

// Snapshot returns the pool counters captured together. Workers and
// QueueCapacity are immutable after NewPool, so the only racing field,
// QueueDepth, is read exactly once.
func (p *Pool) Snapshot() PoolStats {
	return PoolStats{
		Workers:       p.workers,
		QueueCapacity: cap(p.jobs),
		QueueDepth:    len(p.jobs),
	}
}
