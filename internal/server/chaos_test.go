package server

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/guard"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/solvecache"
)

// soakFor is how long TestChaosSoak drives faulted load. The default
// keeps `go test` fast; make soak-smoke runs the CI-grade 10s soak
// (under -race) via this flag.
var soakFor = flag.Duration("soak", 2*time.Second, "chaos soak duration for TestChaosSoak")

func TestHealthzFlips503OnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func() (int, map[string]string) {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("pre-drain healthz = %d %v", code, body)
	}
	s.BeginDrain()
	code, body := get()
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("post-drain healthz = %d %v, want 503 draining", code, body)
	}
	// The API itself keeps answering while draining — only the health
	// probe flips, so requests already routed still complete.
	if resp, out := solve(t, ts, SolveRequest{Instance: quickstartFormat(8)}); resp.StatusCode != http.StatusOK || out.Status != "complete" {
		t.Errorf("solve while draining = %d %q", resp.StatusCode, out.Status)
	}
	if st := statz(t, ts); !st.Draining {
		t.Error("statz does not report draining")
	}
}

// TestShed429CarriesRetryAfter pins the shedding contract end to end: a
// queue-full 429 carries a Retry-After header that parses as a positive
// integer, and the same advice in the JSON body.
func TestShed429CarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	guard.Arm("core.phase", func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	defer func() {
		guard.DisarmAll()
		close(release)
	}()

	done := make(chan struct{}, 2)
	go func() {
		solve(t, ts, SolveRequest{Instance: quickstartFormat(8)})
		done <- struct{}{}
	}()
	<-started
	go func() {
		solve(t, ts, SolveRequest{Instance: quickstartFormat(9)})
		done <- struct{}{}
	}()
	deadline := time.After(5 * time.Second)
	for s.pool.QueueDepth() != 1 {
		select {
		case <-deadline:
			t.Fatal("second request never reached the queue")
		case <-time.After(time.Millisecond):
		}
	}

	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: quickstartFormat(10)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, data)
	}
	h := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(h)
	if err != nil || secs <= 0 {
		t.Fatalf("Retry-After header %q does not parse as a positive integer (%v)", h, err)
	}
	var e struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body %s: %v", data, err)
	}
	if e.RetryAfterSeconds != secs {
		t.Errorf("body advice %ds != header %ds", e.RetryAfterSeconds, secs)
	}
	if hint := statz(t, ts).RetryAfterHint; hint <= 0 {
		t.Errorf("statz retry_after_hint_seconds = %d", hint)
	}

	close(release)
	guard.DisarmAll()
	<-done
	<-done
	release = make(chan struct{}) // disarm the deferred double close
}

// TestSnapshotSurvivesKillRestart is the ISSUE's warm-restart check: a
// solved instance saved by server A is served straight from cache by a
// fresh server B restored from the snapshot — the hit counter moves, no
// solver runs.
func TestSnapshotSurvivesKillRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bccsnap")
	req := SolveRequest{Instance: quickstartFormat(8), IncludePlan: true}

	a, tsA := newTestServer(t, Config{})
	_, first := solve(t, tsA, req)
	if first.Status != "complete" || first.Cached {
		t.Fatalf("priming solve: %+v", first)
	}
	if n, err := a.SaveSnapshot(path); err != nil || n != 1 {
		t.Fatalf("SaveSnapshot = (%d, %v)", n, err)
	}
	tsA.Close()
	a.Close() // the "kill" (graceful here; crash-safety is snapshot_test's job)

	b, tsB := newTestServer(t, Config{})
	if n, err := b.RestoreSnapshot(path); err != nil || n != 1 {
		t.Fatalf("RestoreSnapshot = (%d, %v)", n, err)
	}
	_, warmed := solve(t, tsB, req)
	if !warmed.Cached {
		t.Error("restored instance was not served from cache")
	}
	if warmed.Utility != first.Utility || warmed.Cost != first.Cost || warmed.Fingerprint != first.Fingerprint {
		t.Errorf("restored result drifted: %+v vs %+v", warmed, first)
	}
	if len(warmed.Classifiers) != len(first.Classifiers) {
		t.Errorf("restored plan lost classifiers: %d vs %d", len(warmed.Classifiers), len(first.Classifiers))
	}
	st := statz(t, tsB)
	if st.Solves != 0 {
		t.Errorf("server B ran %d solves for a snapshotted instance, want 0", st.Solves)
	}
	if st.Cache.Hits != 1 || st.Snapshot.RestoredEntries != 1 {
		t.Errorf("server B stats: hits=%d restored=%d", st.Cache.Hits, st.Snapshot.RestoredEntries)
	}

	// A garbage snapshot is reported, counted, and non-fatal.
	c, tsC := newTestServer(t, Config{})
	bad := filepath.Join(t.TempDir(), "bad.bccsnap")
	if err := os.WriteFile(bad, []byte("bccsnap/9 00000000 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestoreSnapshot(bad); err == nil {
		t.Error("corrupt snapshot restored without error")
	}
	if resp, _ := solve(t, tsC, req); resp.StatusCode != http.StatusOK {
		t.Errorf("server with rejected snapshot cannot serve: %d", resp.StatusCode)
	}
	if st := statz(t, tsC); st.Snapshot.LoadErrors != 1 {
		t.Errorf("LoadErrors = %d, want 1", st.Snapshot.LoadErrors)
	}
}

// everyNth returns a fault that panics on every nth firing — the soak's
// deterministic, race-clean stand-in for probabilistic faults.
func everyNth(n uint64, msg string) func() {
	var count atomic.Uint64
	return func() {
		if count.Add(1)%n == 0 {
			panic(msg)
		}
	}
}

// TestChaosSoak drives concurrent retrying clients through a server
// with panic faults armed at the admission, dequeue, cache and solver
// layers, then checks the wreckage: every request got a valid answer,
// panics were counted not fatal, snapshots taken mid-chaos are never
// torn, the breaker/retry metrics exported, and no goroutines leaked.
func TestChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{Workers: 2, Queue: 4, CacheTTL: time.Minute, DefaultDeadline: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())

	// Four injection points across the serving stack (the ISSUE floor is
	// three): request admission, worker dequeue, cache lookup and store —
	// plus a solver-phase fault so pool jobs die mid-solve too.
	guard.Arm("server.admit", everyNth(31, "chaos: admit"))
	guard.Arm("server.pool.dequeue", everyNth(37, "chaos: dequeue"))
	guard.Arm("solvecache.get", everyNth(41, "chaos: cache get"))
	guard.Arm("solvecache.put", everyNth(11, "chaos: cache put"))
	guard.Arm("core.phase", everyNth(43, "chaos: solver"))
	defer guard.DisarmAll()

	transport := &http.Transport{}
	reg := obs.NewRegistry()
	cl, err := client.New(client.Config{
		BaseURL:     ts.URL,
		HTTPClient:  &http.Client{Transport: transport},
		MaxAttempts: 3,
		Backoff:     resilience.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		// Ratio policy with a high bar: induced faults are scattered, the
		// breaker should mostly stay closed and keep the load flowing.
		Breaker:  &resilience.BreakerConfig{ConsecutiveFailures: -1, FailureRatio: 0.9, Cooldown: 100 * time.Millisecond},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A snapshot writer races the chaos: saves must either land whole or
	// fail cleanly — never produce a torn file.
	snapPath := filepath.Join(t.TempDir(), "soak.bccsnap")
	guard.Arm("solvecache.snapshot.save", everyNth(4, "chaos: snapshot save"))
	saverDone := make(chan struct{})
	saverCtx, stopSaver := context.WithCancel(context.Background())
	go func() {
		defer close(saverDone)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-saverCtx.Done():
				return
			case <-tick.C:
				_, _ = s.SaveSnapshot(snapPath)
			}
		}
	}()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Client:      cl,
		Requests:    loadgen.SyntheticWorkload(6, 42),
		Concurrency: 8,
		Duration:    *soakFor,
		BatchEvery:  7,
		BatchSize:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopSaver()
	<-saverDone
	guard.DisarmAll()

	t.Logf("soak report:\n%s", rep.String())
	if rep.Ops < 50 {
		t.Fatalf("soak barely ran: %d ops", rep.Ops)
	}
	if rep.Ops != rep.OK+rep.Failed {
		t.Errorf("ops %d != ok %d + failed %d: some request got no classified answer", rep.Ops, rep.OK, rep.Failed)
	}
	for status := range rep.Statuses {
		switch status {
		case "complete", "deadline", "canceled", "recovered":
		default:
			t.Errorf("invalid solve status %q reached a client", status)
		}
	}
	for class := range rep.Errors {
		switch class {
		case "http-429", "http-5xx", "breaker-open", "deadline", "item-429", "item-500":
		default:
			// http-4xx here would mean chaos corrupted a request into a
			// validation error; transport would mean a connection died
			// without an HTTP answer — both break the "every request gets a
			// valid status" contract.
			t.Errorf("unexpected error class %q: %d", class, rep.Errors[class])
		}
	}

	st := s.Statz()
	if st.PanicsRecovered == 0 {
		t.Error("no panics recovered — the faults never fired")
	}
	if st.Snapshot.Saves == 0 || st.Snapshot.SaveErrors == 0 {
		t.Errorf("snapshot chaos missed a side: saves=%d errors=%d", st.Snapshot.Saves, st.Snapshot.SaveErrors)
	}

	// The last mid-chaos snapshot on disk must restore whole.
	fresh := solvecache.New(1024, 0)
	if n, err := solvecache.Load(snapPath, fresh, func(raw []byte) (any, error) {
		var v SolveResponse
		return &v, json.Unmarshal(raw, &v)
	}); err != nil || n != fresh.Len() {
		t.Errorf("mid-chaos snapshot torn: Load = (%d, %v), cache holds %d", n, err, fresh.Len())
	}

	// After the storm: with faults disarmed the same workload flows clean
	// (a fresh breaker-less client, so a breaker left open by the soak
	// cannot flake this check).
	calm, err := client.New(client.Config{BaseURL: ts.URL, MaxAttempts: 5, DisableBreaker: true,
		HTTPClient: &http.Client{Transport: transport},
		Backoff:    resilience.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range loadgen.SyntheticWorkload(3, 42) {
		resp, err := calm.Solve(context.Background(), &req)
		if err != nil {
			t.Errorf("post-chaos solve failed: %v", err)
			continue
		}
		if resp.Status != "complete" {
			t.Errorf("post-chaos status %q", resp.Status)
		}
	}

	// Breaker/retry series are on the client registry; panic/snapshot
	// counters on the server's /metrics.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bcc_retry_total", "bcc_breaker_state"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("client metrics missing %s", want)
		}
	}
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bcc_panics_recovered_total", "bcc_snapshot_saves_total", "bcc_snapshot_age_seconds", "bcc_draining 0"} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("server metrics missing %s", want)
		}
	}

	// Tear everything down and verify nothing leaked: workers, flights,
	// saver and HTTP machinery must all unwind.
	ts.Close()
	s.Close()
	transport.CloseIdleConnections()
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
