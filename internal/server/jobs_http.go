package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	bcc "repro"
	"repro/internal/api"
	"repro/internal/incr"
	"repro/internal/jobs"
	"repro/internal/propset"
)

// OpenJobs enables the async solve-job subsystem over dir: the job
// store is scanned, incomplete jobs are requeued (warm-started from
// their last checkpoint), and the job endpoints under /v1/jobs start
// answering. Call it once, before the handler serves traffic. logf,
// when non-nil, receives resume/quarantine log lines.
func (s *Server) OpenJobs(dir string, logf func(format string, args ...any)) error {
	if s.jobs != nil {
		return errors.New("server: jobs already open")
	}
	m, err := jobs.Open(jobs.Config{
		Dir:                dir,
		Workers:            s.cfg.JobWorkers,
		MaxJobs:            s.cfg.JobMaxJobs,
		CheckpointInterval: s.cfg.JobCheckpointInterval,
		DefaultDeadline:    s.cfg.JobDefaultDeadline,
		MaxDeadline:        s.cfg.JobMaxDeadline,
		Solve:              s.jobSolve,
		Registry:           s.reg,
		Logf:               logf,
	})
	if err != nil {
		return err
	}
	s.jobs = m
	return nil
}

// Jobs exposes the job manager (tests and embedders); nil until
// OpenJobs.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// jobSolve is the jobs.SolveFunc: one anytime solve slice on a job
// worker, warm-started from the checkpoint. It shares validation
// (prepareSolve) and solver dispatch (runSolve) with the synchronous
// path, so a job accepts exactly the inputs /v1/solve accepts, and a
// completed full solve feeds the same solution cache.
func (s *Server) jobSolve(ctx context.Context, req *api.JobRequest, cp *jobs.Checkpoint) (*api.SolveResponse, error) {
	in, algo, fp, apiErr := s.prepareSolve(&req.SolveRequest)
	if apiErr != nil {
		// Validation failures are permanent: fail the job with the
		// reason rather than retrying a request that can never parse.
		return nil, errors.New(apiErr.Msg)
	}
	// A checkpoint (this job's own earlier progress) always wins; the
	// request's WarmPlan only seeds the first slice, after which the
	// checkpoint supersedes it.
	warm := warmSets(in, cp)
	warmSource := ""
	if warm == nil && len(req.WarmPlan) > 0 {
		if w := incr.Repair(in, req.WarmPlan); len(w) > 0 {
			warm, warmSource = w, api.WarmSourceRequest
			s.incrWarmRequest.Add(1)
		}
	}
	s.solves.Add(1)
	s.inflight.Add(1)
	t0 := time.Now()
	resp := runSolve(ctx, in, algo, &req.SolveRequest, fp, warm, warmSource)
	if warmSource != "" {
		// Checkpoint seeds are the job's own earlier incumbent and cannot
		// lower quality; only externally supplied plans need the guard.
		resp = s.floorGuard(ctx, in, algo, &req.SolveRequest, fp, resp)
	}
	s.inflight.Add(-1)
	s.observeSolve(algo, resp.Status, time.Since(t0).Seconds())
	if resp.Status == bcc.Complete.String() && !req.NoCache {
		// Same contract as the synchronous path: only full solves are
		// cached, so a later identical /v1/solve hits instantly.
		tmpl := *resp
		s.cache.Put(cacheKey(fp, algo, &req.SolveRequest), &tmpl)
	}
	return resp, nil
}

// warmSets converts a checkpoint's plan back into property sets against
// the instance's universe. Names missing from the universe (possible
// only if the instance bytes changed under the same fingerprint, i.e.
// never in practice) drop that classifier — warm-start is an
// optimization, not a correctness requirement.
func warmSets(in *bcc.Instance, cp *jobs.Checkpoint) []bcc.PropSet {
	if cp == nil || len(cp.Classifiers) == 0 {
		return nil
	}
	u := in.Universe()
	warm := make([]bcc.PropSet, 0, len(cp.Classifiers))
	for _, c := range cp.Classifiers {
		ids := make([]propset.ID, 0, len(c.Props))
		ok := true
		for _, name := range c.Props {
			id, found := u.Lookup(name)
			if !found {
				ok = false
				break
			}
			ids = append(ids, id)
		}
		if ok && len(ids) > 0 {
			warm = append(warm, propset.New(ids...))
		}
	}
	return warm
}

// errJobsDisabled answers the job routes while OpenJobs has not run.
var errJobsDisabled = errorf(http.StatusNotImplemented,
	"async jobs disabled: start the server with a jobs directory (-jobs-dir)")

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, errJobsDisabled)
		return
	}
	var req api.JobRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); apiErr != nil {
		s.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	// Validate at submission so the caller learns about a bad request
	// now, with a 400 — not later as a failed job.
	_, algo, fp, apiErr := s.prepareSolve(&req.SolveRequest)
	if apiErr != nil {
		s.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	st, err := s.jobs.Submit(&req, algo, fp)
	if err != nil {
		writeError(w, jobs.ErrHTTP(err))
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	if s.jobs == nil {
		writeError(w, errJobsDisabled)
		return
	}
	sts := s.jobs.List()
	list := api.JobList{Jobs: make([]api.JobStatus, len(sts))}
	for i, st := range sts {
		list.Jobs[i] = *st
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, errJobsDisabled)
		return
	}
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobs.ErrHTTP(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult answers 200 with the SolveResponse once the job
// completed, 202 with the current JobStatus (anytime progress included)
// while it is still queued or running, and 409 with the reason for a
// job that ended without a result (failed or canceled) — a poller
// switches on the status code alone, never sniffing body shapes.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, errJobsDisabled)
		return
	}
	resp, st, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, jobs.ErrHTTP(err))
		return
	}
	if !api.JobTerminal(st.State) {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	if resp == nil {
		reason := st.Error
		if reason == "" {
			reason = st.State
		}
		writeError(w, errorf(http.StatusConflict, "job %s ended %s without a result: %s", st.ID, st.State, reason))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, errJobsDisabled)
		return
	}
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, jobs.ErrHTTP(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}
