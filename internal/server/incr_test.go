package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/incr"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

func TestSolveWarmFromRequestPlan(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, cold := solve(t, ts, SolveRequest{Instance: quickstartFormat(3), IncludePlan: true})
	if len(cold.Classifiers) == 0 {
		t.Fatalf("cold solve returned no plan: %+v", cold)
	}
	if cold.WarmSource != "" {
		t.Fatalf("cold solve reports WarmSource %q", cold.WarmSource)
	}
	plan := make([][]string, len(cold.Classifiers))
	for i, c := range cold.Classifiers {
		plan[i] = c.Props
	}

	// NoCache keeps the second request off the exact-hit path so the
	// warm machinery actually runs.
	_, warm := solve(t, ts, SolveRequest{
		Instance: quickstartFormat(3), IncludePlan: true,
		NoCache: true, WarmPlan: plan,
	})
	if warm.WarmSource != api.WarmSourceRequest {
		t.Fatalf("WarmSource = %q, want %q", warm.WarmSource, api.WarmSourceRequest)
	}
	if warm.Utility < cold.Utility {
		t.Fatalf("warm utility %v below cold %v", warm.Utility, cold.Utility)
	}
	st := statz(t, ts)
	if st.Incr.WarmRequest < 1 {
		t.Errorf("statz incr = %+v, want warm_request >= 1", st.Incr)
	}
}

func TestSolveWarmFromCacheSibling(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Prime the cache at budget 9, then ask for the same query set at a
	// different budget: new fingerprint (cache miss) but same bccfp2/1,
	// so the near-miss index donates the budget-9 plan as a warm seed.
	_, first := solve(t, ts, SolveRequest{Instance: quickstartFormat(3), IncludePlan: true})
	if first.Fingerprint2 == "" {
		t.Fatal("solve response carries no fingerprint2")
	}

	shrunk := quickstartFormat(3)
	shrunk.Budget = 6
	_, second := solve(t, ts, SolveRequest{Instance: shrunk, IncludePlan: true})
	if second.Fingerprint2 != first.Fingerprint2 {
		t.Fatalf("fp2 changed with budget: %q vs %q", second.Fingerprint2, first.Fingerprint2)
	}

	st := statz(t, ts)
	if st.Incr.SiblingHits < 1 {
		t.Fatalf("statz incr = %+v, want sibling_hits >= 1", st.Incr)
	}
	// The warm answer must still clear the IG1 quality floor — either
	// the seeded solve did, or the floor guard re-ran it cold.
	in, err := dataset.FromFormat(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if second.Utility < incr.Floor(in) {
		t.Fatalf("sibling-warm utility %v below IG1 floor %v", second.Utility, incr.Floor(in))
	}
	if second.WarmSource != api.WarmSourceSibling && st.Incr.FloorFallbacks == 0 {
		t.Errorf("WarmSource = %q with no floor fallback, want %q", second.WarmSource, api.WarmSourceSibling)
	}
}

func TestCacheEntryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, resp := solve(t, ts, SolveRequest{Instance: quickstartFormat(3), IncludePlan: true})

	key := api.CacheKey(resp.Fingerprint, resp.Algo, 0, 0)
	var exact api.CacheEntryResponse
	if code := getJSON(t, ts.URL+"/v1/cache/entry?key="+key, &exact); code != http.StatusOK {
		t.Fatalf("exact lookup = %d", code)
	}
	if exact.Key != key || exact.Sibling || exact.Response == nil || len(exact.Response.Classifiers) == 0 {
		t.Fatalf("exact entry = %+v, want key match with plan", exact)
	}

	var sib api.CacheEntryResponse
	code := getJSON(t, ts.URL+"/v1/cache/entry?fp2="+resp.Fingerprint2+"&algo="+resp.Algo, &sib)
	if code != http.StatusOK {
		t.Fatalf("sibling lookup = %d", code)
	}
	if !sib.Sibling || sib.Key != key || sib.Response == nil {
		t.Fatalf("sibling entry = %+v, want sibling=true key=%s", sib, key)
	}

	if code := getJSON(t, ts.URL+"/v1/cache/entry?key=nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown key = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cache/entry?fp2=deadbeef&algo=abcc", nil); code != http.StatusNotFound {
		t.Errorf("unknown fp2 = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cache/entry", nil); code != http.StatusBadRequest {
		t.Errorf("missing params = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cache/entry?fp2=deadbeef", nil); code != http.StatusBadRequest {
		t.Errorf("fp2 without algo = %d, want 400", code)
	}
}

func TestFloorGuardResolvesColdBelowFloor(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	in, err := dataset.FromFormat(quickstartFormat(3))
	if err != nil {
		t.Fatal(err)
	}
	fp := in.Fingerprint()
	req := &SolveRequest{IncludePlan: true}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	low := &SolveResponse{Fingerprint: fp, Algo: "abcc", Utility: 0}
	out := s.floorGuard(ctx, in, "abcc", req, fp, low)
	if out == low {
		t.Fatal("floor guard kept a below-floor warm result")
	}
	if floor := incr.Floor(in); out.Utility < floor {
		t.Fatalf("guarded utility %v still below floor %v", out.Utility, floor)
	}
	if got := s.incrFloorFallbacks.Load(); got != 1 {
		t.Fatalf("floor fallbacks = %d, want 1", got)
	}

	// Target-seeking solvers answer feasibility, not budgeted
	// maximization; the floor does not apply.
	exempt := &SolveResponse{Fingerprint: fp, Algo: "gmc3", Utility: 0}
	if out := s.floorGuard(ctx, in, "gmc3", &SolveRequest{Target: 1}, fp, exempt); out != exempt {
		t.Fatal("floor guard re-solved an IgnoresBudget result")
	}
}

func TestSnapshotRestoreRebuildsSiblingIndex(t *testing.T) {
	s1, ts1 := newTestServer(t, Config{})
	if _, r := solve(t, ts1, SolveRequest{Instance: quickstartFormat(3), IncludePlan: true}); r.Fingerprint == "" {
		t.Fatal("priming solve failed")
	}
	path := filepath.Join(t.TempDir(), "cache.bccsnap")
	if n, err := s1.SaveSnapshot(path); err != nil || n < 1 {
		t.Fatalf("SaveSnapshot = %d, %v", n, err)
	}

	// The restored server must answer a budget-variant of the
	// snapshotted instance through the sibling index, without ever
	// having solved the original itself.
	s2, ts2 := newTestServer(t, Config{})
	if n, err := s2.RestoreSnapshot(path); err != nil || n < 1 {
		t.Fatalf("RestoreSnapshot = %d, %v", n, err)
	}
	shrunk := quickstartFormat(3)
	shrunk.Budget = 6
	if _, r := solve(t, ts2, SolveRequest{Instance: shrunk, IncludePlan: true}); r.Fingerprint == "" {
		t.Fatal("solve on restored server failed")
	}
	if st := s2.Statz(); st.Incr.SiblingHits < 1 {
		t.Fatalf("restored server incr = %+v, want sibling_hits >= 1 (index not rebuilt)", st.Incr)
	}
}

func TestPipelineWarmChainsAcrossWindows(t *testing.T) {
	_, ts := newPipelineServer(t, Config{})
	if resp, data := postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{Lines: ingestLines(3)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, data)
	}

	awaitSeq := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			var plan api.CurrentPlanResponse
			if code := getJSON(t, ts.URL+"/v1/plan/current", &plan); code == http.StatusOK && plan.Seq >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("no plan with seq >= %d after 10s", want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	awaitSeq(1)

	// A second window over overlapping terms: its solve request must be
	// seeded from the plan the first window published.
	if resp, data := postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{Lines: ingestLines(5)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest = %d: %s", resp.StatusCode, data)
	}
	awaitSeq(2)

	st := statz(t, ts)
	if st.Pipeline == nil || st.Pipeline.WarmChained < 1 {
		t.Fatalf("statz pipeline = %+v, want warm_chained >= 1", st.Pipeline)
	}
	if st.Incr.WarmRequest < 1 {
		t.Errorf("statz incr = %+v, want the chained window counted as a request-sourced warm solve", st.Incr)
	}
}

func TestPlanCurrentETag(t *testing.T) {
	_, ts := newPipelineServer(t, Config{})
	if resp, data := postJSON(t, ts.URL+"/v1/ingest", api.IngestRequest{Lines: ingestLines(3)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, data)
	}

	// Wait for the first publish and capture its validator.
	var etag string
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/plan/current")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			etag = r.Header.Get("ETag")
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no plan published after 10s; last status %d", r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if etag == "" || etag[0] != '"' {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}

	conditional := func(inm string) (int, string) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/plan/current", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", inm)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, string(body)
	}

	// The backlog is drained (plan published), so the validator is
	// stable: matching conditionals are 304s with empty bodies.
	if code, body := conditional(etag); code != http.StatusNotModified || body != "" {
		t.Fatalf("If-None-Match %s = %d %q, want 304 with empty body", etag, code, body)
	}
	if code, _ := conditional("W/" + etag + `, "other"`); code != http.StatusNotModified {
		t.Errorf("weak + list form not honored (got %d)", code)
	}
	if code, _ := conditional("*"); code != http.StatusNotModified {
		t.Errorf("wildcard = %d, want 304", code)
	}
	if code, _ := conditional(`"stale-validator"`); code != http.StatusOK {
		t.Errorf("mismatched validator = %d, want 200", code)
	}
}
