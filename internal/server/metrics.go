package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// solveBuckets are the latency buckets for whole solver executions —
// coarser than the HTTP defaults because a full A^BCC run on a large
// instance is measured in seconds, not microseconds.
var solveBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 30, 60, 120}

// initMetrics registers the server's gauge/counter families on its
// registry. Counters that the request path already maintains as atomics
// are bridged with CounterFunc so the hot path keeps its single Add;
// point-in-time values (queue depth, goroutines, cache entries) are
// read at scrape time via GaugeFunc.
func (s *Server) initMetrics() {
	reg := s.reg
	reg.GaugeFunc("bcc_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("bcc_goroutines", "Goroutines currently live in the process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("bcc_pool_workers", "Solver worker pool size.", nil,
		func() float64 { return float64(s.pool.Workers()) })
	reg.GaugeFunc("bcc_pool_queue_capacity", "Admission queue capacity.", nil,
		func() float64 { return float64(s.pool.QueueCapacity()) })
	reg.GaugeFunc("bcc_pool_queue_depth", "Jobs waiting for a worker.", nil,
		func() float64 { return float64(s.pool.QueueDepth()) })
	reg.GaugeFunc("bcc_inflight_solves", "Solver executions running right now.", nil,
		func() float64 { return float64(s.inflight.Load()) })

	reg.CounterFunc("bcc_solve_requests_total", "Solve requests admitted (batch items count).", nil,
		func() float64 { return float64(s.requests.Load()) })
	reg.CounterFunc("bcc_solves_total", "Underlying solver executions on the pool.", nil,
		func() float64 { return float64(s.solves.Load()) })
	reg.CounterFunc("bcc_rejected_total", "Requests shed with HTTP 429 (queue full).", nil,
		func() float64 { return float64(s.rejected.Load()) })
	reg.CounterFunc("bcc_shed_tier_total", "Exact-tier requests downgraded to the fast tier under queue pressure.", nil,
		func() float64 { return float64(s.shedTier.Load()) })
	reg.CounterFunc("bcc_bad_requests_total", "Requests failing validation (4xx).", nil,
		func() float64 { return float64(s.badRequests.Load()) })
	reg.CounterFunc("bcc_deadline_results_total", "HTTP 200 answers carrying a non-complete status.", nil,
		func() float64 { return float64(s.deadlineResults.Load()) })

	reg.CounterFunc("bcc_panics_recovered_total", "Handler/worker/snapshot panics contained into responses.", nil,
		func() float64 { return float64(s.panics.Load()) })
	reg.GaugeFunc("bcc_draining", "1 once BeginDrain was called (healthz answers 503), else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("bcc_retry_after_hint_seconds", "Current adaptive Retry-After advice for shed requests.", nil,
		func() float64 { return float64(s.retryAfterSeconds()) })

	reg.CounterFunc("bcc_snapshot_saves_total", "Successful cache snapshot saves.", nil,
		func() float64 { return float64(s.snapSaves.Load()) })
	reg.CounterFunc("bcc_snapshot_save_errors_total", "Failed cache snapshot saves (incl. contained panics).", nil,
		func() float64 { return float64(s.snapSaveErrors.Load()) })
	reg.CounterFunc("bcc_snapshot_restored_entries_total", "Cache entries restored from snapshots.", nil,
		func() float64 { return float64(s.snapRestored.Load()) })
	reg.CounterFunc("bcc_snapshot_load_errors_total", "Rejected snapshot loads (missing, corrupt, version mismatch).", nil,
		func() float64 { return float64(s.snapLoadErrors.Load()) })
	reg.GaugeFunc("bcc_snapshot_age_seconds", "Seconds since the last successful snapshot save (-1 = never).", nil,
		s.snapshotAgeSeconds)

	reg.GaugeFunc("bcc_cache_entries", "Live solution cache entries.", nil,
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("bcc_cache_inflight", "Single-flight leaders currently running.", nil,
		func() float64 { return float64(s.cache.Stats().InFlight) })
	reg.CounterFunc("bcc_cache_hits_total", "Lookups answered from a stored entry.", nil,
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("bcc_cache_misses_total", "Lookups that became flight leaders.", nil,
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("bcc_cache_shared_waits_total", "Lookups that joined another caller's flight.", nil,
		func() float64 { return float64(s.cache.Stats().SharedWaits) })
	reg.CounterFunc("bcc_cache_evictions_total", "Entries dropped by LRU capacity pressure.", nil,
		func() float64 { return float64(s.cache.Stats().Evictions) })
}

// statusWriter captures the status code a handler writes (and whether
// anything was written at all) so the instrumentation can label the
// request's series with it and the panic containment knows whether a
// JSON 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with per-route/status latency and count
// recording — a bcc_http_request_seconds{route,code} histogram and a
// bcc_http_requests_total{route,code} counter — plus panic containment:
// a handler panic (e.g. an armed admission fault) becomes a JSON 500
// answer instead of net/http's bare connection reset, so chaos clients
// always receive a parseable status. Series are resolved after the
// handler ran, when the status code is known; get-or-create makes that
// race-free.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Every response names the process that produced it, so a caller
		// behind bccgate can verify fingerprint affinity with curl -i.
		w.Header().Set(api.BackendHeader, s.cfg.BackendID)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				sw.code = http.StatusInternalServerError
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						errorf(http.StatusInternalServerError, "internal panic: %v", p))
				}
			}
			labels := obs.Labels{"route": route, "code": strconv.Itoa(sw.code)}
			s.reg.Histogram("bcc_http_request_seconds", "HTTP request latency by route and status.",
				labels, obs.DefBuckets).Observe(time.Since(start).Seconds())
			s.reg.Counter("bcc_http_requests_total", "HTTP requests by route and status.", labels).Inc()
		}()
		h(sw, r)
	}
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// DebugHandler returns the opt-in debug mux: net/http/pprof plus a
// second /metrics mount. It is deliberately not part of Handler() —
// cmd/bccserver only exposes it on -debug-addr, so profiling endpoints
// never face production traffic by accident.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}
