package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
)

// solveBuckets are the latency buckets for whole solver executions —
// coarser than the HTTP defaults because a full A^BCC run on a large
// instance is measured in seconds, not microseconds.
var solveBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 30, 60, 120}

// initMetrics registers the server's gauge/counter families on its
// registry. Counters that the request path already maintains as atomics
// are bridged with CounterFunc so the hot path keeps its single Add;
// point-in-time values (queue depth, goroutines, cache entries) are
// read at scrape time via GaugeFunc.
func (s *Server) initMetrics() {
	reg := s.reg
	reg.GaugeFunc("bcc_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("bcc_goroutines", "Goroutines currently live in the process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("bcc_pool_workers", "Solver worker pool size.", nil,
		func() float64 { return float64(s.pool.Workers()) })
	reg.GaugeFunc("bcc_pool_queue_capacity", "Admission queue capacity.", nil,
		func() float64 { return float64(s.pool.QueueCapacity()) })
	reg.GaugeFunc("bcc_pool_queue_depth", "Jobs waiting for a worker.", nil,
		func() float64 { return float64(s.pool.QueueDepth()) })
	reg.GaugeFunc("bcc_inflight_solves", "Solver executions running right now.", nil,
		func() float64 { return float64(s.inflight.Load()) })

	reg.CounterFunc("bcc_solve_requests_total", "Solve requests admitted (batch items count).", nil,
		func() float64 { return float64(s.requests.Load()) })
	reg.CounterFunc("bcc_solves_total", "Underlying solver executions on the pool.", nil,
		func() float64 { return float64(s.solves.Load()) })
	reg.CounterFunc("bcc_rejected_total", "Requests shed with HTTP 429 (queue full).", nil,
		func() float64 { return float64(s.rejected.Load()) })
	reg.CounterFunc("bcc_bad_requests_total", "Requests failing validation (4xx).", nil,
		func() float64 { return float64(s.badRequests.Load()) })
	reg.CounterFunc("bcc_deadline_results_total", "HTTP 200 answers carrying a non-complete status.", nil,
		func() float64 { return float64(s.deadlineResults.Load()) })

	reg.GaugeFunc("bcc_cache_entries", "Live solution cache entries.", nil,
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("bcc_cache_inflight", "Single-flight leaders currently running.", nil,
		func() float64 { return float64(s.cache.Stats().InFlight) })
	reg.CounterFunc("bcc_cache_hits_total", "Lookups answered from a stored entry.", nil,
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("bcc_cache_misses_total", "Lookups that became flight leaders.", nil,
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("bcc_cache_shared_waits_total", "Lookups that joined another caller's flight.", nil,
		func() float64 { return float64(s.cache.Stats().SharedWaits) })
	reg.CounterFunc("bcc_cache_evictions_total", "Entries dropped by LRU capacity pressure.", nil,
		func() float64 { return float64(s.cache.Stats().Evictions) })
}

// statusWriter captures the status code a handler writes so the
// instrumentation can label the request's series with it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route/status latency and count
// recording: a bcc_http_request_seconds{route,code} histogram and a
// bcc_http_requests_total{route,code} counter. Series are resolved
// after the handler ran, when the status code is known; get-or-create
// makes that race-free.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		labels := obs.Labels{"route": route, "code": strconv.Itoa(sw.code)}
		s.reg.Histogram("bcc_http_request_seconds", "HTTP request latency by route and status.",
			labels, obs.DefBuckets).Observe(time.Since(start).Seconds())
		s.reg.Counter("bcc_http_requests_total", "HTTP requests by route and status.", labels).Inc()
	}
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// DebugHandler returns the opt-in debug mux: net/http/pprof plus a
// second /metrics mount. It is deliberately not part of Handler() —
// cmd/bccserver only exposes it on -debug-addr, so profiling endpoints
// never face production traffic by accident.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}
