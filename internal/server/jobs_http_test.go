package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
)

// newJobsServer is newTestServer plus an opened jobs directory.
func newJobsServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := newTestServer(t, cfg)
	if err := s.OpenJobs(dir, t.Logf); err != nil {
		t.Fatalf("OpenJobs: %v", err)
	}
	return s, ts
}

func submitJob(t *testing.T, ts *httptest.Server, req api.JobRequest) api.JobStatus {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var st api.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding submit response %s: %v", data, err)
	}
	if st.ID == "" || st.State != api.JobQueued {
		t.Fatalf("submit answered %+v, want a queued job with an ID", st)
	}
	return st
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, api.JobStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var st api.JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding status %s: %v", data, err)
		}
	}
	return resp.StatusCode, st
}

func awaitJobState(t *testing.T, ts *httptest.Server, id, want string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, code)
		}
		if st.State == want {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, st := getJob(t, ts, id)
	t.Fatalf("job %s never reached %q (last: %+v)", id, want, st)
	return api.JobStatus{}
}

func TestJobsDisabledAnswer501(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/jobs"},
		{"GET", "/v1/jobs"},
		{"GET", "/v1/jobs/0123456789abcdef"},
		{"GET", "/v1/jobs/0123456789abcdef/result"},
		{"POST", "/v1/jobs/0123456789abcdef/cancel"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s %s = %d, want 501", probe.method, probe.path, resp.StatusCode)
		}
	}
}

func TestJobEndToEndCompletesAndFeedsCache(t *testing.T) {
	_, ts := newJobsServer(t, t.TempDir(), Config{})

	st := submitJob(t, ts, api.JobRequest{SolveRequest: api.SolveRequest{
		Instance: quickstartFormat(8), IncludePlan: true,
	}})
	done := awaitJobState(t, ts, st.ID, api.JobCompleted)
	if done.Progress == nil || done.Progress.Utility != 13 {
		t.Fatalf("completed progress = %+v, want utility 13", done.Progress)
	}

	// The result endpoint serves the full SolveResponse for a terminal job.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, data)
	}
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Utility != 13 || out.Status != "complete" || len(out.Classifiers) == 0 {
		t.Fatalf("job result = %+v, want complete utility 13 with a plan", out)
	}

	// The completed full solve went into the solution cache: the same
	// request through the synchronous path answers as a hit.
	hresp, sync := solve(t, ts, SolveRequest{Instance: quickstartFormat(8)})
	if hresp.StatusCode != http.StatusOK || !sync.Cached {
		t.Fatalf("synchronous solve after job: code %d cached %v, want a cache hit", hresp.StatusCode, sync.Cached)
	}

	// Listing includes the job; statz exposes the subsystem counters.
	listResp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list api.JobList
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	found := false
	for _, j := range list.Jobs {
		if j.ID == st.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s missing from list %+v", st.ID, list.Jobs)
	}
	sz := statz(t, ts)
	if sz.Jobs == nil || sz.Jobs.Completed != 1 {
		t.Fatalf("statz.Jobs = %+v, want completed=1", sz.Jobs)
	}
}

func TestJobSubmitValidates(t *testing.T) {
	_, ts := newJobsServer(t, t.TempDir(), Config{})
	resp, data := postJSON(t, ts.URL+"/v1/jobs", api.JobRequest{SolveRequest: api.SolveRequest{
		Instance: quickstartFormat(8), Algo: "nope",
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad algo = %d: %s", resp.StatusCode, data)
	}
	if code, _ := getJob(t, ts, "does-not-exist"); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
}

func TestJobSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newJobsServer(t, dir, Config{})
	st := submitJob(t, ts1, api.JobRequest{SolveRequest: api.SolveRequest{
		Instance: quickstartFormat(8),
	}})
	awaitJobState(t, ts1, st.ID, api.JobCompleted)
	ts1.Close()
	s1.Close()

	// A fresh server over the same directory still serves the terminal
	// record from disk.
	_, ts2 := newJobsServer(t, dir, Config{})
	code, got := getJob(t, ts2, st.ID)
	if code != http.StatusOK || got.State != api.JobCompleted {
		t.Fatalf("after restart: code %d state %+v, want completed", code, got)
	}
}
