package server

import (
	"context"
	"net/http"
	"time"

	bcc "repro"
	"repro/internal/algo"
	"repro/internal/api"
	"repro/internal/incr"
	"repro/internal/obs"
)

// Incremental re-solve paths (DESIGN.md §17). Every solve that can be
// warm-started funnels through warmFor → runWarmSolve:
//
//   - a request-supplied WarmPlan (pipeline warm chaining, gateway peer
//     fill, bccsolve -warm-from) is repaired against this instance and
//     seeds the solver;
//   - otherwise the cache's near-miss index is consulted: an entry whose
//     bccfp2/1 tag matches (same queries, any budget/utilities/costs)
//     donates its plan;
//   - the warm result is held to the IG1 quality floor (incr.Floor); a
//     warm solve that lands below it is discarded and re-run cold, so a
//     bad seed can degrade latency but never answer quality.

// siblingTag derives the near-miss index tag from a cached value. It is
// installed as the cache's tagger in New, and re-applied by Import, so a
// bccsnap restore rebuilds the sibling index from the persisted
// Fingerprint2 fields without any sidecar state.
func siblingTag(v any) string {
	resp, ok := v.(*SolveResponse)
	if !ok || resp == nil || resp.Fingerprint2 == "" {
		return ""
	}
	return api.SiblingTag(resp.Fingerprint2, resp.Algo)
}

// warmFor picks the warm seed for one solve: the request's own repaired
// WarmPlan first, then a near-miss cache sibling. key is the request's
// exact cache key (excluded from sibling candidates). Returns a nil
// seed for cold solves and for algorithms without the WarmStart
// capability.
func (s *Server) warmFor(in *bcc.Instance, served string, req *SolveRequest, key string) ([]bcc.PropSet, string) {
	d, _ := algo.Lookup(served)
	if !d.WarmStart {
		return nil, ""
	}
	if len(req.WarmPlan) > 0 {
		if w := incr.Repair(in, req.WarmPlan); len(w) > 0 {
			s.incrWarmRequest.Add(1)
			return w, api.WarmSourceRequest
		}
		return nil, ""
	}
	if req.NoCache {
		return nil, ""
	}
	_, v, ok := s.cache.Sibling(api.SiblingTag(in.Fingerprint2(), served), key)
	if !ok {
		return nil, ""
	}
	s.incrSiblingHits.Add(1)
	sib, ok := v.(*SolveResponse)
	if !ok || len(sib.Classifiers) == 0 {
		return nil, ""
	}
	plan := make([][]string, len(sib.Classifiers))
	for i, c := range sib.Classifiers {
		plan[i] = c.Props
	}
	if w := incr.Repair(in, plan); len(w) > 0 {
		s.incrWarmSibling.Add(1)
		return w, api.WarmSourceSibling
	}
	return nil, ""
}

// runWarmSolve is runSolve plus the incremental machinery: warm-seed
// selection, the IG1 quality floor on warm results, and the
// warm-vs-cold latency histogram. It is the only solve entry of the
// synchronous path and of job slices without a checkpoint.
func (s *Server) runWarmSolve(ctx context.Context, in *bcc.Instance, served string, req *SolveRequest, fp, key string) *SolveResponse {
	warm, source := s.warmFor(in, served, req, key)
	mode := "cold"
	if warm != nil {
		mode = "warm"
	}
	t0 := time.Now()
	resp := runSolve(ctx, in, served, req, fp, warm, source)
	if warm != nil {
		guarded := s.floorGuard(ctx, in, served, req, fp, resp)
		if guarded != resp {
			resp, mode = guarded, "cold"
		}
	}
	s.reg.Histogram("bcc_incr_solve_seconds",
		"Solver execution time split by warm-started vs cold runs.",
		obs.Labels{"mode": mode}, solveBuckets).Observe(time.Since(t0).Seconds())
	return resp
}

// floorGuard holds a warm result to the IG1 quality floor: defense in
// depth — WarmStart solvers already keep a cold IG1 floor internally,
// but no warm path may answer below it even if a solver regresses. A
// violating result is discarded and replaced by a fresh cold solve.
// Target-seeking solvers are exempt (their answer is a feasibility
// verdict, not a budgeted maximization).
func (s *Server) floorGuard(ctx context.Context, in *bcc.Instance, served string, req *SolveRequest, fp string, resp *SolveResponse) *SolveResponse {
	d, _ := algo.Lookup(served)
	if d.IgnoresBudget || resp.Utility >= incr.Floor(in) {
		return resp
	}
	s.incrFloorFallbacks.Add(1)
	return runSolve(ctx, in, served, req, fp, nil, "")
}

// IncrStats is the /v1/statz view of the incremental re-solve
// subsystem.
type IncrStats struct {
	// WarmRequest / WarmSibling count warm-started solves by seed
	// source (caller-supplied plan vs near-miss cache neighbor).
	WarmRequest uint64 `json:"warm_request"`
	WarmSibling uint64 `json:"warm_sibling"`
	// SiblingHits counts near-miss index lookups that found a neighbor
	// (>= WarmSibling: a found plan can still repair to nothing).
	SiblingHits uint64 `json:"sibling_hits"`
	// FloorFallbacks counts warm results under the IG1 floor that were
	// re-solved cold.
	FloorFallbacks uint64 `json:"floor_fallbacks"`
}

func (s *Server) incrStats() IncrStats {
	return IncrStats{
		WarmRequest:    s.incrWarmRequest.Load(),
		WarmSibling:    s.incrWarmSibling.Load(),
		SiblingHits:    s.incrSiblingHits.Load(),
		FloorFallbacks: s.incrFloorFallbacks.Load(),
	}
}

func (s *Server) initIncrMetrics() {
	reg := s.reg
	reg.CounterFunc("bcc_incr_warm_total", "Warm-started solves by seed source.",
		obs.Labels{"source": api.WarmSourceRequest},
		func() float64 { return float64(s.incrWarmRequest.Load()) })
	reg.CounterFunc("bcc_incr_warm_total", "Warm-started solves by seed source.",
		obs.Labels{"source": api.WarmSourceSibling},
		func() float64 { return float64(s.incrWarmSibling.Load()) })
	reg.CounterFunc("bcc_incr_sibling_hits_total", "Near-miss cache index lookups that found a neighbor entry.", nil,
		func() float64 { return float64(s.incrSiblingHits.Load()) })
	reg.CounterFunc("bcc_incr_floor_fallbacks_total", "Warm results under the IG1 quality floor, re-solved cold.", nil,
		func() float64 { return float64(s.incrFloorFallbacks.Load()) })
}

// handleCacheEntry is GET /v1/cache/entry: the cache export a peer
// backend uses for fleet warm transfer. ?key= answers an exact entry;
// ?fp2=&algo= answers any near-miss sibling. 404 when nothing matches —
// peer fill treats that as "start cold", never as an error worth
// retrying.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if key := q.Get("key"); key != "" {
		if v, ok := s.cache.Get(key); ok {
			if resp, ok := v.(*SolveResponse); ok {
				writeJSON(w, http.StatusOK, api.CacheEntryResponse{Key: key, Response: resp})
				return
			}
		}
		writeError(w, errorf(http.StatusNotFound, "no cache entry for key %q", key))
		return
	}
	fp2, algoName := q.Get("fp2"), q.Get("algo")
	if fp2 == "" || algoName == "" {
		writeError(w, errorf(http.StatusBadRequest, "cache entry lookup needs ?key= or ?fp2=&algo="))
		return
	}
	key, v, ok := s.cache.Sibling(api.SiblingTag(fp2, algoName), "")
	if !ok {
		writeError(w, errorf(http.StatusNotFound, "no cache entry tagged %s", api.SiblingTag(fp2, algoName)))
		return
	}
	resp, okResp := v.(*SolveResponse)
	if !okResp {
		writeError(w, errorf(http.StatusNotFound, "no cache entry tagged %s", api.SiblingTag(fp2, algoName)))
		return
	}
	writeJSON(w, http.StatusOK, api.CacheEntryResponse{Key: key, Sibling: true, Response: resp})
}
