package server

import (
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/api"
	"repro/internal/pipeline"
)

// OpenPipeline enables the continuous workload pipeline over walDir:
// the query-log WAL is opened (repairing any torn tail), the persisted
// consumption state is recovered, an interrupted window is adopted, and
// the ingest/plan endpoints start answering. Requires OpenJobs first —
// window solves run as checkpointed jobs so they survive crashes the
// same way ad-hoc jobs do. Call before the handler serves traffic.
func (s *Server) OpenPipeline(walDir string, logf func(format string, args ...any)) error {
	if s.pipe != nil {
		return errors.New("server: pipeline already open")
	}
	if s.jobs == nil {
		return errors.New("server: pipeline requires jobs (call OpenJobs first)")
	}
	p, err := pipeline.Open(pipeline.Options{
		Dir:               walDir,
		Window:            s.cfg.PipelineWindow,
		Retention:         s.cfg.PipelineRetention,
		MaxBacklogRecords: s.cfg.PipelineMaxBacklog,
		Algo:              s.cfg.PipelineAlgo,
		Budget:            s.cfg.PipelineBudget,
		Seed:              s.cfg.PipelineSeed,
		Target:            s.cfg.PipelineTarget,
		Jobs:              &pipelineJobs{s: s},
		Registry:          s.reg,
		Logf:              logf,
	})
	if err != nil {
		return err
	}
	s.pipe = p
	return nil
}

// Pipeline exposes the pipeline (tests and embedders); nil until
// OpenPipeline.
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pipe }

// pipelineJobs adapts the server's job manager to the pipeline's Jobs
// interface, running each window request through the same validation
// and fingerprinting as an external POST /v1/jobs submission.
type pipelineJobs struct{ s *Server }

func (a *pipelineJobs) Submit(req *api.JobRequest) (*api.JobStatus, error) {
	_, algo, fp, apiErr := a.s.prepareSolve(&req.SolveRequest)
	if apiErr != nil {
		return nil, errors.New(apiErr.Msg)
	}
	return a.s.jobs.Submit(req, algo, fp)
}

func (a *pipelineJobs) Status(id string) (*api.JobStatus, error) { return a.s.jobs.Get(id) }

func (a *pipelineJobs) Result(id string) (*api.SolveResponse, *api.JobStatus, error) {
	return a.s.jobs.Result(id)
}

func (a *pipelineJobs) Cancel(id string) (*api.JobStatus, error) { return a.s.jobs.Cancel(id) }

// errPipelineDisabled answers the pipeline routes while OpenPipeline has
// not run.
var errPipelineDisabled = errorf(http.StatusNotImplemented,
	"continuous pipeline disabled: start the server with a WAL directory (-wal-dir)")

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.pipe == nil {
		writeError(w, errPipelineDisabled)
		return
	}
	var req api.IngestRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); apiErr != nil {
		s.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	accepted, err := s.pipe.Ingest(req.Lines)
	if err != nil {
		var le *pipeline.LineError
		switch {
		case errors.As(err, &le):
			s.badRequests.Add(1)
			writeError(w, errorf(http.StatusBadRequest, "%v", le))
		case errors.Is(err, pipeline.ErrBacklog):
			s.rejected.Add(1)
			// Advise one window: that is the cadence at which backlog
			// drains, so retrying sooner can only meet the same answer.
			e := errorf(http.StatusTooManyRequests, "ingest backlog full, retry later")
			e.RetryAfterSeconds = int(math.Ceil(s.pipe.Window().Seconds()))
			writeError(w, e)
		default:
			writeError(w, errorf(http.StatusInternalServerError, "ingest failed: %v", err))
		}
		return
	}
	writeJSON(w, http.StatusOK, api.IngestResponse{
		Accepted:       accepted,
		BacklogRecords: s.pipe.Stats().BacklogRecords,
	})
}

func (s *Server) handlePlanCurrent(w http.ResponseWriter, r *http.Request) {
	if s.pipe == nil {
		writeError(w, errPipelineDisabled)
		return
	}
	resp, err := s.pipe.CurrentPlan()
	if err != nil {
		if errors.Is(err, pipeline.ErrNoPlan) {
			writeError(w, errorf(http.StatusNotFound, "no plan published yet"))
			return
		}
		writeError(w, errorf(http.StatusInternalServerError, "reading current plan: %v", err))
		return
	}
	// Conditional GET: the ETag derives from the published plan's instance
	// fingerprint plus the window sequence, so a poller (bccwatch, an
	// enforcement agent) re-downloads the plan body only when a new window
	// actually published. 304 answers cost no solve and no body bytes.
	etag := planETag(resp)
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// planETag is the strong validator for GET /v1/plan/current:
// "<fingerprint>-<seq>". The fingerprint alone is not enough — a window
// can republish an identical instance with a fresher sequence — and the
// sequence alone would not survive a WAL-truncating restart, so both go
// in.
func planETag(resp *api.CurrentPlanResponse) string {
	return `"` + resp.Plan.Fingerprint + "-" + strconv.FormatUint(resp.Seq, 10) + `"`
}

// etagMatches implements the If-None-Match comparison: a comma-split
// list of entity tags, each possibly W/-prefixed (weak comparison is
// fine for a cache validator), or the "*" wildcard.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag || cand == "*" {
			return true
		}
	}
	return false
}
