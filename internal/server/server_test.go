package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	bcc "repro"
	"repro/internal/dataset"
	"repro/internal/guard"
)

// quickstartFormat is the README running example as a request instance.
func quickstartFormat(utility float64) dataset.FileFormat {
	return dataset.FileFormat{
		Budget: 9,
		Queries: []dataset.FileQuery{
			{Props: []string{"wooden", "table"}, Utility: utility},
			{Props: []string{"running", "shoes"}, Utility: 5},
		},
		Costs: []dataset.FileCost{
			{Props: []string{"wooden"}, Cost: 4},
			{Props: []string{"table"}, Cost: 2},
			{Props: []string{"wooden", "table"}, Cost: 3},
			{Props: []string{"running", "shoes"}, Cost: 6},
		},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func solve(t *testing.T, ts *httptest.Server, req SolveRequest) (*http.Response, SolveResponse) {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/solve", req)
	var out SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decoding response %s: %v", data, err)
		}
	}
	return resp, out
}

func statz(t *testing.T, ts *httptest.Server) Statz {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Statz
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func planCost(r SolveResponse) float64 {
	var sum float64
	for _, c := range r.Classifiers {
		sum += c.Cost
	}
	return sum
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["status"] != "ok" {
		t.Fatalf("healthz body = %v (%v)", body, err)
	}
}

func TestMalformedJSONIs400WithJSONBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"not json":      "{nope",
		"unknown field": `{"instance": {"budget": 1, "queries": [{"props": ["a"], "utility": 1}]}, "daedline_ms": 5}`,
		"wrong type":    `{"instance": "hello"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", name, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s not a JSON {error}: %v", name, data, err)
		}
	}
}

func TestInvalidInstanceAndParams400(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Duplicate query rides the dataset.FromFormat validation.
	ff := quickstartFormat(8)
	ff.Queries = append(ff.Queries, dataset.FileQuery{Props: []string{"table", "wooden"}, Utility: 1})
	if resp, _ := solve(t, ts, SolveRequest{Instance: ff}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate query: status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := solve(t, ts, SolveRequest{Instance: quickstartFormat(8), Algo: "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown algo: status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := solve(t, ts, SolveRequest{Instance: quickstartFormat(8), Algo: "gmc3"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("gmc3 without target: status = %d, want 400", resp.StatusCode)
	}
	if s := statz(t, ts); s.BadRequests != 3 {
		t.Errorf("BadRequests = %d, want 3", s.BadRequests)
	}
}

func TestSolveEndToEndMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := solve(t, ts, SolveRequest{Instance: quickstartFormat(8), IncludePlan: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	in, err := dataset.FromFormat(quickstartFormat(8))
	if err != nil {
		t.Fatal(err)
	}
	want := bcc.Solve(in, bcc.Options{})
	if out.Utility != want.Utility || out.Cost != want.Cost {
		t.Errorf("served (u=%v c=%v) != library (u=%v c=%v)", out.Utility, out.Cost, want.Utility, want.Cost)
	}
	if out.Status != "complete" {
		t.Errorf("status = %q", out.Status)
	}
	if out.Fingerprint != in.Fingerprint() {
		t.Errorf("fingerprint %s != instance fingerprint %s", out.Fingerprint, in.Fingerprint())
	}
	if len(out.Classifiers) == 0 {
		t.Error("include_plan returned no classifiers")
	}
	if c := planCost(out); c != out.Cost {
		t.Errorf("plan cost %v != reported cost %v", c, out.Cost)
	}
}

func TestRepeatedRequestServedFromCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SolveRequest{Instance: quickstartFormat(8), IncludePlan: true}

	_, first := solve(t, ts, req)
	if first.Cached {
		t.Fatal("first request claims to be cached")
	}
	_, second := solve(t, ts, req)
	if !second.Cached {
		t.Fatal("identical repeat was not served from cache")
	}
	if second.Utility != first.Utility || second.Cost != first.Cost {
		t.Errorf("cached result differs: %+v vs %+v", second, first)
	}
	s := statz(t, ts)
	if s.Solves != 1 {
		t.Errorf("Solves = %d after an identical repeat, want 1", s.Solves)
	}
	if s.Cache.Hits != 1 || s.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", s.Cache.Hits, s.Cache.Misses)
	}

	// A different budget is a different problem: no cache hit.
	b := 5.0
	_, third := solve(t, ts, SolveRequest{Instance: quickstartFormat(8), Budget: &b})
	if third.Cached {
		t.Error("budget-overridden request hit the old cache entry")
	}
	if third.Fingerprint == first.Fingerprint {
		t.Error("budget override did not change the fingerprint")
	}
}

func TestNoCacheBypassesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SolveRequest{Instance: quickstartFormat(8), NoCache: true}
	solve(t, ts, req)
	solve(t, ts, req)
	s := statz(t, ts)
	if s.Solves != 2 {
		t.Errorf("Solves = %d with no_cache, want 2", s.Solves)
	}
	if s.Cache.Stored != 0 {
		t.Errorf("no_cache stored %d entries", s.Cache.Stored)
	}
}

// Over-deadline solves answer 200 with status=deadline and a
// budget-feasible plan, and are never cached.
func TestDeadlineReturns200WithAnytimePlan(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// 100 ms sits on the light rung of the degradation ladder (50–250 ms):
	// the pipeline still runs phases — and hits the armed delay — rather
	// than dropping to the instant greedy floor.
	guard.Arm("core.phase", guard.DelayFault(250*time.Millisecond))
	defer guard.DisarmAll()

	req := SolveRequest{Instance: quickstartFormat(8), DeadlineMS: 100, IncludePlan: true}
	resp, out := solve(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 on deadline", resp.StatusCode)
	}
	if out.Status != "deadline" {
		t.Fatalf("status = %q, want deadline", out.Status)
	}
	if c := planCost(out); c > out.Budget {
		t.Errorf("deadline plan cost %v exceeds budget %v", c, out.Budget)
	}
	if s := statz(t, ts); s.DeadlineResults != 1 {
		t.Errorf("DeadlineResults = %d, want 1", s.DeadlineResults)
	}

	// The truncated result must not have been cached: disarm and repeat
	// — the full solve runs and completes.
	guard.DisarmAll()
	_, again := solve(t, ts, SolveRequest{Instance: quickstartFormat(8)})
	if again.Cached {
		t.Error("truncated result was cached")
	}
	if again.Status != "complete" {
		t.Errorf("post-deadline repeat status = %q", again.Status)
	}
}

// With every worker busy and the queue full, the service sheds load with
// 429 instead of queueing unboundedly.
func TestFullQueueSheds429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	guard.Arm("core.phase", func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	defer func() {
		guard.DisarmAll()
		close(release)
	}()

	results := make(chan int, 2)
	// Distinct utilities → distinct fingerprints → no single-flight merge.
	go func() {
		resp, _ := solve(t, ts, SolveRequest{Instance: quickstartFormat(8)})
		results <- resp.StatusCode
	}()
	<-started // the only worker is now blocked inside a solve

	go func() {
		resp, _ := solve(t, ts, SolveRequest{Instance: quickstartFormat(9)})
		results <- resp.StatusCode
	}()
	// Wait for the second job to occupy the queue slot.
	deadline := time.After(5 * time.Second)
	for s.pool.QueueDepth() != 1 {
		select {
		case <-deadline:
			t.Fatal("second request never reached the queue")
		case <-time.After(time.Millisecond):
		}
	}

	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: quickstartFormat(10)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d (%s), want 429", resp.StatusCode, data)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Errorf("429 body %s not a JSON {error}: %v", data, err)
	}
	if got := statz(t, ts); got.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", got.Rejected)
	}

	close(release)
	guard.DisarmAll()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted request %d finished with %d", i, code)
		}
	}
	// Rearm-safe: release is closed; prevent the deferred double close.
	release = make(chan struct{})
}

// Concurrent identical requests share exactly one underlying solve.
func TestConcurrentIdenticalRequestsSingleFlight(t *testing.T) {
	const followers = 7
	s, ts := newTestServer(t, Config{Workers: 2, Queue: 8})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	guard.Arm("core.phase", func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	closeOnce := sync.OnceFunc(func() { close(release) })
	defer func() {
		guard.DisarmAll()
		closeOnce()
	}()

	req := SolveRequest{Instance: quickstartFormat(8), IncludePlan: true}
	codes := make(chan int, followers+1)
	bodies := make(chan SolveResponse, followers+1)
	run := func() {
		resp, out := solve(t, ts, req)
		codes <- resp.StatusCode
		bodies <- out
	}
	go run()
	<-started // leader is mid-solve; its flight is registered
	for i := 0; i < followers; i++ {
		go run()
	}
	// Followers must all be waiting on the leader's flight before the
	// solve is allowed to finish.
	deadline := time.After(5 * time.Second)
	for s.cache.Stats().SharedWaits != followers {
		select {
		case <-deadline:
			t.Fatalf("followers never joined the flight: %+v", s.cache.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	closeOnce()

	var shared int
	for i := 0; i < followers+1; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("request %d: status %d", i, code)
		}
		out := <-bodies
		if out.Status != "complete" {
			t.Errorf("request %d: status %q", i, out.Status)
		}
		if out.Shared {
			shared++
		}
	}
	if shared != followers {
		t.Errorf("shared responses = %d, want %d", shared, followers)
	}
	got := statz(t, ts)
	if got.Solves != 1 {
		t.Errorf("Solves = %d for %d concurrent identical requests, want exactly 1", got.Solves, followers+1)
	}
	if got.Cache.Misses != 1 || got.Cache.SharedWaits != followers {
		t.Errorf("cache stats = %+v", got.Cache)
	}
}

func TestBatchMixedResults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch := BatchRequest{Requests: []SolveRequest{
		{Instance: quickstartFormat(8)},
		{Instance: quickstartFormat(8), Algo: "nope"},
		{Instance: quickstartFormat(8), Algo: "gmc3", Target: 5},
	}}
	resp, data := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("responses = %d", len(out.Responses))
	}
	if out.Responses[0].Result == nil || out.Responses[0].Error != "" {
		t.Errorf("item 0: %+v", out.Responses[0])
	}
	if out.Responses[1].Result != nil || out.Responses[1].Code != http.StatusBadRequest {
		t.Errorf("item 1: %+v", out.Responses[1])
	}
	r2 := out.Responses[2].Result
	if r2 == nil || r2.Achieved == nil || !*r2.Achieved {
		t.Errorf("item 2: %+v", out.Responses[2])
	}
}

func TestBatchCaps(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	batch := BatchRequest{Requests: make([]SolveRequest, 3)}
	for i := range batch.Requests {
		batch.Requests[i] = SolveRequest{Instance: quickstartFormat(float64(8 + i))}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/solve/batch", batch); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/solve/batch", BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
}

func TestAlgoVariants(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, algo := range []string{"rand", "ig1", "ig2", "ecc"} {
		resp, out := solve(t, ts, SolveRequest{Instance: quickstartFormat(8), Algo: algo, IncludePlan: true})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", algo, resp.StatusCode)
			continue
		}
		if out.Algo != algo || out.Status != "complete" {
			t.Errorf("%s: %+v", algo, out)
		}
		if algo != "ecc" && planCost(out) > out.Budget {
			t.Errorf("%s: plan cost %v over budget %v", algo, planCost(out), out.Budget)
		}
	}
	// Different algos must not collide in the cache.
	if s := statz(t, ts); s.Cache.Hits != 0 {
		t.Errorf("cross-algo cache hits = %d, want 0", s.Cache.Hits)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := SolveRequest{Instance: quickstartFormat(8)}
	for i := 0; i < 50; i++ {
		big.Instance.Queries = append(big.Instance.Queries,
			dataset.FileQuery{Props: []string{fmt.Sprintf("prop-%d", i)}, Utility: 1})
	}
	resp, _ := postJSON(t, ts.URL+"/v1/solve", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}
