// Package server is the HTTP solving service: a JSON API over the BCC
// solver façades with canonical instance fingerprinting, a solution
// cache with single-flight deduplication (internal/solvecache), a
// bounded worker pool with a bounded admission queue, per-request
// deadlines threaded into the anytime SolveCtx entry points, and
// load-shedding with 429 when the queue is full.
//
// Request flow for POST /v1/solve:
//
//	decode → validate (dataset.FromFormat) → Fingerprint → cache lookup
//	→ single-flight join or pool admission → SolveCtx under the request
//	deadline → respond (HTTP 200 even on deadline, carrying the anytime
//	result with status=deadline) → cache Complete results
//
// Only Complete results are cached: a deadline-truncated plan is valid
// but inferior, and must not shadow the full solution for later callers.
//
// Observability (internal/obs): GET /metrics serves the Prometheus
// exposition — per-route/status HTTP latency histograms, per-algorithm
// solve histograms, pool/queue/cache/goroutine gauges — and
// DebugHandler carries net/http/pprof for the opt-in debug listener.
// GET /v1/statz reports the same counters as one consistent JSON
// snapshot plus build info. The metric inventory is DESIGN.md §10.
package server

import (
	"context"
	crand "crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	bcc "repro"
	"repro/internal/algo"
	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/guard"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/solvecache"
)

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the solver pool size (default: 4).
	Workers int
	// Queue is the admission queue capacity (default: 64). A request
	// arriving with all workers busy and the queue full is answered 429.
	Queue int
	// ShedTierDepth enables queue-pressure tier shedding: when the
	// admission queue is deeper than this many waiting solves, a request
	// for the exact tier (algo=abcc) is served by the fast approximate
	// tier (algo=submod) instead of queueing behind the backlog. The
	// response still reports the requested algo, with algo_served naming
	// what actually ran. 0 (the default) disables shedding; a value >=
	// Queue never triggers (the queue 429s first). Meaningful values sit
	// well below Queue.
	ShedTierDepth int
	// CacheSize is the solution cache capacity in entries (default 1024;
	// negative disables caching, single-flight still applies).
	CacheSize int
	// CacheTTL bounds the life of a cache entry (default 15m; <= 0 means
	// no expiry).
	CacheTTL time.Duration
	// DefaultDeadline applies when a request carries no deadline_ms
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps any requested deadline (default 2m).
	MaxDeadline time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatch caps the number of requests in one batch (default 64).
	MaxBatch int
	// BackendID is this process's stable identity, sent on every response
	// as the X-BCC-Backend header and reported in /v1/statz so affinity
	// routing through bccgate is debuggable end to end. Empty means a
	// generated "<hostname>-<pid>-<4 random hex>" ID.
	BackendID string

	// JobWorkers, JobMaxJobs, JobCheckpointInterval, JobDefaultDeadline
	// and JobMaxDeadline tune the async job subsystem once OpenJobs is
	// called; zero values take the internal/jobs defaults. They are
	// inert while jobs are disabled.
	JobWorkers            int
	JobMaxJobs            int
	JobCheckpointInterval time.Duration
	JobDefaultDeadline    time.Duration
	JobMaxDeadline        time.Duration

	// PipelineWindow, PipelineRetention, PipelineMaxBacklog,
	// PipelineAlgo, PipelineBudget, PipelineSeed and PipelineTarget tune
	// the continuous workload pipeline once OpenPipeline is called; zero
	// values take the internal/pipeline defaults. Inert while the
	// pipeline is disabled.
	PipelineWindow     time.Duration
	PipelineRetention  time.Duration
	PipelineMaxBacklog int64
	PipelineAlgo       string
	PipelineBudget     float64
	PipelineSeed       int64
	PipelineTarget     float64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 15 * time.Minute
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.BackendID == "" {
		c.BackendID = defaultBackendID()
	}
	return c
}

// defaultBackendID builds the generated per-process identity. The random
// suffix distinguishes restarts of the same binary on the same host, so
// a gateway's statz never conflates the old and new incarnation.
func defaultBackendID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "bcc"
	}
	var suffix [2]byte
	if _, err := crand.Read(suffix[:]); err != nil {
		// A broken entropy source must not stop the server; pid alone
		// still distinguishes processes on one host.
		return fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return fmt.Sprintf("%s-%d-%x", host, os.Getpid(), suffix)
}

// Server wires the cache, the worker pool and the HTTP handlers. Create
// one with New, mount Handler, and Close it to drain on shutdown.
type Server struct {
	cfg   Config
	cache *solvecache.Cache
	pool  *Pool
	start time.Time
	reg   *obs.Registry
	// jobs is the async solve-job manager, nil until OpenJobs. Set
	// before the handler serves traffic (cmd/bccserver calls OpenJobs
	// during startup); handlers answer 501 while nil.
	jobs *jobs.Manager
	// pipe is the continuous workload pipeline, nil until OpenPipeline
	// (which requires OpenJobs); handlers answer 501 while nil.
	pipe *pipeline.Pipeline

	closeOnce sync.Once

	requests        atomic.Uint64 // solve requests admitted to solveOne (batch items count)
	solves          atomic.Uint64 // underlying solver executions on the pool
	rejected        atomic.Uint64 // 429 load-shed answers
	shedTier        atomic.Uint64 // exact-tier requests downgraded to the fast tier
	badRequests     atomic.Uint64 // 4xx validation failures
	deadlineResults atomic.Uint64 // 200 answers with a non-complete status
	inflight        atomic.Int64  // solver executions running on the pool right now
	panics          atomic.Uint64 // handler/worker panics contained into responses
	draining        atomic.Bool   // BeginDrain called; healthz answers 503

	// Incremental re-solve counters (internal/incr; see incr.go).
	incrWarmRequest    atomic.Uint64 // warm solves seeded by a request WarmPlan
	incrWarmSibling    atomic.Uint64 // warm solves seeded from a near-miss cache neighbor
	incrSiblingHits    atomic.Uint64 // sibling index lookups that found a neighbor
	incrFloorFallbacks atomic.Uint64 // warm results under the IG1 floor, re-solved cold

	// Snapshot persistence counters (SaveSnapshot / RestoreSnapshot).
	snapSaves      atomic.Uint64
	snapSaveErrors atomic.Uint64
	snapRestored   atomic.Uint64 // entries restored across all loads
	snapLoadErrors atomic.Uint64
	snapLastUnixNS atomic.Int64 // wall clock of the last successful save; 0 = never

	// solveHists tracks every bcc_solve_seconds series this server has
	// created, so the shedding advice can aggregate recent solve latency
	// across algos/statuses without scraping the exposition text.
	solveHistMu sync.Mutex
	solveHists  []*obs.Histogram
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: solvecache.New(cfg.CacheSize, cfg.CacheTTL),
		pool:  NewPool(cfg.Workers, cfg.Queue),
		start: time.Now(),
		reg:   obs.NewRegistry(),
	}
	// The near-miss (sibling) index: every cached response is tagged by
	// its bccfp2/1 hash + algo, and Import re-tags, so a bccsnap restore
	// rebuilds the index from the persisted Fingerprint2 fields.
	s.cache.SetTagger(siblingTag)
	s.initMetrics()
	s.initIncrMetrics()
	return s
}

// Registry exposes the metrics registry (tests, and embedders that want
// to add their own series next to the server's).
func (s *Server) Registry() *obs.Registry { return s.reg }

// BackendID returns this process's stable identity — the value of every
// response's X-BCC-Backend header.
func (s *Server) BackendID() string { return s.cfg.BackendID }

// Close stops admission and drains in-flight and queued solves. It
// implies BeginDrain, so a health check racing a shutdown sees 503.
// Jobs drain first: each in-flight job checkpoints and is persisted
// back to queued so the next process resumes it.
func (s *Server) Close() {
	s.BeginDrain()
	s.closeOnce.Do(func() {
		// The pipeline stops before the job manager: its scheduler may be
		// mid-await on a job, and the in-flight window must persist before
		// jobs checkpoint and requeue.
		if s.pipe != nil {
			s.pipe.Close()
		}
		if s.jobs != nil {
			s.jobs.Close()
		}
		s.pool.Close()
	})
}

// BeginDrain flips /v1/healthz to 503 so load balancers stop routing
// new traffic, while the API keeps answering requests already arriving.
// cmd/bccserver calls it when the shutdown signal lands, before the
// listener stops accepting.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Cache exposes the solution cache (tests and the warm-up path).
func (s *Server) Cache() *solvecache.Cache { return s.cache }

// Handler returns the route table. Every route is instrumented with
// per-route/status latency histograms; GET /metrics serves the
// Prometheus exposition (pprof lives on the separate DebugHandler).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("/v1/solve", s.handleSolve))
	mux.HandleFunc("POST /v1/solve/batch", s.instrument("/v1/solve/batch", s.handleBatch))
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.instrument("/v1/jobs/{id}/result", s.handleJobResult))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.instrument("/v1/jobs/{id}/cancel", s.handleJobCancel))
	mux.HandleFunc("POST /v1/ingest", s.instrument("/v1/ingest", s.handleIngest))
	mux.HandleFunc("GET /v1/plan/current", s.instrument("/v1/plan/current", s.handlePlanCurrent))
	mux.HandleFunc("GET /v1/cache/entry", s.instrument("/v1/cache/entry", s.handleCacheEntry))
	mux.HandleFunc("GET /v1/healthz", s.instrument("/v1/healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/statz", s.instrument("/v1/statz", s.handleStatz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// errQueueFull is the sentinel mapped to HTTP 429.
var errQueueFull = errorf(http.StatusTooManyRequests, "server overloaded: worker queue full, retry later")

// Tier shedding downgrades the exact tier to the fast approximate tier
// under queue pressure (Config.ShedTierDepth). The downgrade runs
// through the same registry path as a direct submod request and the
// cache is keyed by the algorithm that actually ran, so a shed answer
// can never shadow a real abcc solution — it lands in (and is served
// from) the submod entry.
const (
	shedFromAlgo = "abcc"
	shedToAlgo   = "submod"
)

// prepareSolve validates a request and materializes the instance: algo
// selection, gmc3 target check, dataset parsing, budget override,
// canonical fingerprint. Shared by the synchronous Solve path and the
// async job path so both reject exactly the same inputs.
func (s *Server) prepareSolve(req *SolveRequest) (*bcc.Instance, string, string, *Error) {
	algoName := req.Algo
	if algoName == "" {
		algoName = "abcc"
	}
	d, known := algo.Lookup(algoName)
	if !known || !d.Servable {
		return nil, "", "", errorf(http.StatusBadRequest, "unknown algo %q (supported: %s)",
			algoName, strings.Join(algo.ServableNames(), ", "))
	}
	if d.NeedsTarget && !(req.Target > 0) {
		return nil, "", "", errorf(http.StatusBadRequest, "algo %s requires a positive target, got %v", algoName, req.Target)
	}
	in, err := dataset.FromFormat(req.Instance)
	if err != nil {
		return nil, "", "", errorf(http.StatusBadRequest, "invalid instance: %v", err)
	}
	if req.Budget != nil {
		b := *req.Budget
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, "", "", errorf(http.StatusBadRequest, "invalid budget override %v", b)
		}
		in = in.WithBudget(b)
	}
	return in, algoName, in.Fingerprint(), nil
}

// Solve runs one request through the full service path (cache,
// single-flight, pool, deadline). It is the programmatic form of
// POST /v1/solve, used by the HTTP handler, the batch handler, and the
// cache warm-up in cmd/bccserver.
func (s *Server) Solve(parent context.Context, req *SolveRequest) (*SolveResponse, *Error) {
	s.requests.Add(1)
	start := time.Now()
	// Chaos hook at admission: armed delays simulate a slow front door,
	// armed panics are contained by the handler middleware into a JSON
	// 500 (and by recoverBatchItem for batch items).
	guard.Inject("server.admit")

	in, requested, fp, apiErr := s.prepareSolve(req)
	if apiErr != nil {
		s.badRequests.Add(1)
		return nil, apiErr
	}
	// Tier shedding: with a deep backlog, answer exact-tier requests from
	// the fast tier now rather than queueing them behind it. Decided per
	// request at admission, before the cache key is formed, so the key
	// names the algorithm that will actually run.
	served := requested
	if s.cfg.ShedTierDepth > 0 && requested == shedFromAlgo && s.pool.QueueDepth() > s.cfg.ShedTierDepth {
		s.shedTier.Add(1)
		served = shedToAlgo
	}
	key := cacheKey(fp, served, req)

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(parent, deadline)
	defer cancel()

	lead := func() (any, bool, error) {
		resCh := make(chan *SolveResponse, 1)
		admitted := s.pool.TrySubmit(func() {
			// The worker must produce exactly one response no matter
			// what: a panic below (a solver bug outside the guard's
			// containment, or an armed dequeue fault) is folded into a
			// status=recovered answer so the waiting request never
			// hangs and the worker goroutine survives.
			answered := false
			defer func() {
				s.inflight.Add(-1)
				if p := recover(); p != nil {
					s.panics.Add(1)
					if !answered {
						resCh <- recoveredResponse(fp, served, in, p)
					}
				}
			}()
			s.inflight.Add(1)
			guard.Inject("server.pool.dequeue")
			t0 := time.Now()
			resp := s.runWarmSolve(ctx, in, served, req, fp, key)
			s.observeSolve(served, resp.Status, time.Since(t0).Seconds())
			answered = true
			resCh <- resp
		})
		if !admitted {
			return nil, false, errQueueFull
		}
		s.solves.Add(1)
		resp := <-resCh
		// Cache only full solves: a truncated anytime plan must not
		// shadow the complete solution for later identical requests.
		return resp, resp.Status == bcc.Complete.String(), nil
	}

	var (
		value   any
		outcome solvecache.Outcome
		runErr  error
	)
	if req.NoCache {
		value, _, runErr = lead()
		outcome = solvecache.Miss
	} else {
		value, outcome, runErr = s.cache.Do(ctx, key, lead)
	}

	if runErr != nil {
		var apiErr *Error
		if errors.As(runErr, &apiErr) {
			if apiErr == errQueueFull {
				s.rejected.Add(1)
				// Shed with advice: a fresh Error per rejection, carrying
				// the Retry-After the pressure model computed right now.
				return nil, s.shedError()
			}
			return nil, apiErr
		}
		if errors.Is(runErr, context.DeadlineExceeded) || errors.Is(runErr, context.Canceled) {
			// A waiter abandoned by its deadline while sharing another
			// request's solve: answer 200 with the (trivially feasible)
			// empty anytime plan, mirroring the solver's own contract.
			resp := &SolveResponse{
				Fingerprint: fp,
				Algo:        requested,
				Status:      bcc.DeadlineExceeded.String(),
				Budget:      in.Budget(),
				Queries:     in.NumQueries(),
				Shared:      true,
				SolverError: runErr.Error(),
			}
			s.deadlineResults.Add(1)
			resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
			return resp, nil
		}
		return nil, errorf(http.StatusInternalServerError, "solve failed: %v", runErr)
	}

	tmpl, ok := value.(*SolveResponse)
	if !ok || tmpl == nil {
		return nil, errorf(http.StatusInternalServerError, "solve produced no result")
	}
	// Copy the shared/cached template before per-request mutation; the
	// classifier slice is shared read-only.
	resp := *tmpl
	if served != requested {
		// The cached template is a pure fast-tier answer (Algo=submod);
		// only this request's copy is marked as a downgrade.
		resp.Algo = requested
		resp.AlgoServed = served
	}
	resp.Cached = outcome == solvecache.Hit
	resp.Shared = outcome == solvecache.Shared
	if !req.IncludePlan {
		resp.Classifiers = nil
	}
	resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	if resp.Status != bcc.Complete.String() {
		s.deadlineResults.Add(1)
	}
	return &resp, nil
}

// observeSolve records one solver execution in the per-algo/status
// latency histogram and remembers the series handle so the shedding
// advice can aggregate over every series created so far.
func (s *Server) observeSolve(algo, status string, seconds float64) {
	h := s.reg.Histogram("bcc_solve_seconds", "Solver execution time by algorithm and final status.",
		obs.Labels{"algo": algo, "status": status}, solveBuckets)
	s.solveHistMu.Lock()
	seen := false
	for _, have := range s.solveHists {
		if have == h {
			seen = true
			break
		}
	}
	if !seen {
		s.solveHists = append(s.solveHists, h)
	}
	s.solveHistMu.Unlock()
	h.Observe(seconds)
}

// avgSolveSeconds aggregates mean solve latency across every
// bcc_solve_seconds series (all algos and statuses). It reports ok =
// false before the first completed solve.
func (s *Server) avgSolveSeconds() (float64, bool) {
	s.solveHistMu.Lock()
	hists := append([]*obs.Histogram(nil), s.solveHists...)
	s.solveHistMu.Unlock()
	var count uint64
	var sum float64
	for _, h := range hists {
		count += h.Count()
		sum += h.Sum()
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}

// retryAfterSeconds is the adaptive shedding advice: the estimated time
// to drain the work already ahead of a new arrival — (queued + running)
// solves spread over the workers, each taking the observed mean solve
// latency — clamped to [1s, 60s] and rounded up to whole seconds, the
// granularity the Retry-After header speaks.
func (s *Server) retryAfterSeconds() int {
	avg, ok := s.avgSolveSeconds()
	if !ok {
		return 1 // no history yet: advise the minimum, not a guess
	}
	pool := s.pool.Snapshot()
	ahead := float64(pool.QueueDepth) + float64(s.inflight.Load())
	secs := (ahead + 1) * avg / float64(pool.Workers)
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return n
}

// shedError builds the 429 answer for a full queue, carrying the
// current Retry-After advice in both the JSON body and (via writeError)
// the HTTP header.
func (s *Server) shedError() *Error {
	e := errorf(http.StatusTooManyRequests, "server overloaded: worker queue full, retry later")
	e.RetryAfterSeconds = s.retryAfterSeconds()
	return e
}

// recoveredResponse is the answer for a solve whose worker panicked
// outside the solver guard's own containment: the trivially feasible
// empty plan, status=recovered, with the panic recorded as the solver
// error — same contract as the in-solver degradation ladder's floor.
func recoveredResponse(fp, algo string, in *bcc.Instance, p any) *SolveResponse {
	return &SolveResponse{
		Fingerprint: fp,
		Algo:        algo,
		Status:      bcc.Recovered.String(),
		Budget:      in.Budget(),
		Queries:     in.NumQueries(),
		SolverError: fmt.Sprintf("recovered panic on pool worker: %v", p),
	}
}

// cacheKey extends the instance fingerprint with every request parameter
// that changes the answer. The format (api.CacheKey) is shared with the
// gateway's peer-fill lookups; deadlines and warm plans are deliberately
// excluded — they change how/where we search, not what the full answer
// is, and truncated or floor-violating results are never stored.
func cacheKey(fp, algo string, req *SolveRequest) string {
	return api.CacheKey(fp, algo, req.Seed, req.Target)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); apiErr != nil {
		s.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	resp, apiErr := s.Solve(r.Context(), &req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &batch); apiErr != nil {
		s.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	if len(batch.Requests) == 0 {
		s.badRequests.Add(1)
		writeError(w, errorf(http.StatusBadRequest, "batch has no requests"))
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		s.badRequests.Add(1)
		writeError(w, errorf(http.StatusBadRequest, "batch of %d exceeds the %d-request cap", len(batch.Requests), s.cfg.MaxBatch))
		return
	}
	// Items run concurrently; the pool bounds actual solver parallelism
	// and identical items collapse through single-flight.
	items := make([]BatchItem, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// These goroutines are outside net/http's per-request panic
			// recovery: a contained failure answers the one item, not
			// the process.
			defer func() {
				if p := recover(); p != nil {
					s.panics.Add(1)
					items[i] = BatchItem{
						Error: fmt.Sprintf("internal panic: %v", p),
						Code:  http.StatusInternalServerError,
					}
				}
			}()
			resp, apiErr := s.Solve(r.Context(), &batch.Requests[i])
			if apiErr != nil {
				items[i] = BatchItem{Error: apiErr.Msg, Code: apiErr.Code, RetryAfterSeconds: apiErr.RetryAfterSeconds}
				return
			}
			items[i] = BatchItem{Result: resp}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Responses: items})
}

// handleHealthz is the load-balancer probe: 200 while serving, 503 once
// draining so routers take the instance out of rotation while in-flight
// requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SnapshotStats is the /v1/statz view of the crash-safe cache
// persistence, captured as one struct (see Server.snapshotStats).
type SnapshotStats struct {
	// Saves / SaveErrors count SaveSnapshot outcomes.
	Saves      uint64 `json:"saves"`
	SaveErrors uint64 `json:"save_errors"`
	// RestoredEntries counts cache entries brought back by
	// RestoreSnapshot across all loads; LoadErrors counts rejected
	// (missing, corrupt, version-mismatched) snapshot files.
	RestoredEntries uint64 `json:"restored_entries"`
	LoadErrors      uint64 `json:"load_errors"`
	// LastSaveUnixMS is the wall clock of the last successful save
	// (0 = never); AgeSeconds is derived from it (-1 = never).
	LastSaveUnixMS int64   `json:"last_save_unix_ms"`
	AgeSeconds     float64 `json:"age_seconds"`
}

// Statz is the GET /v1/statz body.
type Statz struct {
	BackendID       string           `json:"backend_id"`
	UptimeSeconds   float64          `json:"uptime_seconds"`
	Goroutines      int              `json:"goroutines"`
	Build           obs.Build        `json:"build"`
	Workers         int              `json:"workers"`
	QueueCapacity   int              `json:"queue_capacity"`
	QueueDepth      int              `json:"queue_depth"`
	InflightSolves  int64            `json:"inflight_solves"`
	Requests        uint64           `json:"requests"`
	Solves          uint64           `json:"solves"`
	Rejected        uint64           `json:"rejected"`
	ShedTier        uint64           `json:"shed_tier"`
	BadRequests     uint64           `json:"bad_requests"`
	DeadlineResults uint64           `json:"deadline_results"`
	PanicsRecovered uint64           `json:"panics_recovered"`
	Draining        bool             `json:"draining"`
	RetryAfterHint  int              `json:"retry_after_hint_seconds"`
	Cache           solvecache.Stats `json:"cache"`
	Incr            IncrStats        `json:"incr"`
	Snapshot        SnapshotStats    `json:"snapshot"`
	// Jobs is present once OpenJobs has enabled the async subsystem.
	Jobs *jobs.Stats `json:"jobs,omitempty"`
	// Pipeline is present once OpenPipeline has enabled the continuous
	// workload pipeline.
	Pipeline *pipeline.Stats `json:"pipeline,omitempty"`
}

// snapshot captures every statz field in one pass, in an order that
// preserves the counters' natural invariants under concurrent updates:
// each derived counter (solves, deadline results, ...) is read before
// the counter that dominates it (requests), so a statz response can
// never report solves > requests even when a request lands mid-read.
// The pool and the cache are each captured through their own
// single-snapshot accessors for the same reason.
func (s *Server) snapshot() Statz {
	st := Statz{
		BackendID:  s.cfg.BackendID,
		Goroutines: runtime.NumGoroutine(),
		Build:      obs.ReadBuild(),
		Cache:      s.cache.Stats(),
	}
	pool := s.pool.Snapshot()
	st.Workers = pool.Workers
	st.QueueCapacity = pool.QueueCapacity
	st.QueueDepth = pool.QueueDepth
	st.InflightSolves = s.inflight.Load()
	// Numerators before their denominator.
	st.Solves = s.solves.Load()
	st.Rejected = s.rejected.Load()
	st.ShedTier = s.shedTier.Load()
	st.BadRequests = s.badRequests.Load()
	st.DeadlineResults = s.deadlineResults.Load()
	st.PanicsRecovered = s.panics.Load()
	st.Requests = s.requests.Load()
	st.Incr = s.incrStats()
	st.Draining = s.draining.Load()
	st.RetryAfterHint = s.retryAfterSeconds()
	st.Snapshot = s.snapshotStats()
	if s.jobs != nil {
		js := s.jobs.Stats()
		st.Jobs = &js
	}
	if s.pipe != nil {
		st.Pipeline = s.pipe.Stats()
	}
	st.UptimeSeconds = time.Since(s.start).Seconds()
	return st
}

// Statz returns the single-snapshot operational counters — the
// programmatic form of GET /v1/statz, used by embedders (cmd/bccload's
// chaos mode) that hold the *Server directly.
func (s *Server) Statz() Statz { return s.snapshot() }

// snapshotStats captures the persistence counters in dominance order
// (error counters before their totals would matter if one derived from
// the other; here the only invariant is that age is computed from the
// same timestamp that is reported).
func (s *Server) snapshotStats() SnapshotStats {
	st := SnapshotStats{
		Saves:           s.snapSaves.Load(),
		SaveErrors:      s.snapSaveErrors.Load(),
		RestoredEntries: s.snapRestored.Load(),
		LoadErrors:      s.snapLoadErrors.Load(),
		AgeSeconds:      -1,
	}
	if ns := s.snapLastUnixNS.Load(); ns != 0 {
		st.LastSaveUnixMS = ns / int64(time.Millisecond)
		st.AgeSeconds = time.Since(time.Unix(0, ns)).Seconds()
	}
	return st
}

// snapshotAgeSeconds is the bcc_snapshot_age_seconds gauge: seconds
// since the last successful save, -1 before the first one.
func (s *Server) snapshotAgeSeconds() float64 {
	ns := s.snapLastUnixNS.Load()
	if ns == 0 {
		return -1
	}
	return time.Since(time.Unix(0, ns)).Seconds()
}

// SaveSnapshot persists the solution cache to path in the bccsnap/1
// format (atomic rename; see internal/solvecache). Panics from armed
// snapshot faults are contained into the returned error so a periodic
// snapshot timer can never take the server down.
func (s *Server) SaveSnapshot(path string) (n int, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			err = fmt.Errorf("snapshot save panicked: %v", p)
		}
		if err != nil {
			s.snapSaveErrors.Add(1)
		}
	}()
	n, err = solvecache.Save(path, s.cache, func(v any) ([]byte, error) {
		resp, ok := v.(*SolveResponse)
		if !ok {
			return nil, fmt.Errorf("unexpected cache value %T", v)
		}
		return json.Marshal(resp)
	})
	if err == nil {
		s.snapSaves.Add(1)
		s.snapLastUnixNS.Store(time.Now().UnixNano())
	}
	return n, err
}

// RestoreSnapshot loads a snapshot written by SaveSnapshot. Corrupt or
// version-mismatched files (and armed load faults) are contained into
// the returned error and counted; the caller logs and starts cold.
func (s *Server) RestoreSnapshot(path string) (n int, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			err = fmt.Errorf("snapshot load panicked: %v", p)
		}
		if err != nil {
			s.snapLoadErrors.Add(1)
		}
	}()
	n, err = solvecache.Load(path, s.cache, func(raw []byte) (any, error) {
		var resp SolveResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return nil, err
		}
		// Restored answers always present as cache hits; scrub the
		// per-request fields of whoever originally solved them.
		resp.Cached, resp.Shared, resp.DurationMS = false, false, 0
		return &resp, nil
	})
	if err == nil {
		s.snapRestored.Add(uint64(n))
	}
	return n, err
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) *Error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		}
		return errorf(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

// writeError renders an API error, mirroring any retry advice into the
// standard Retry-After header (delay-seconds form) so plain HTTP
// clients and proxies see it without parsing the JSON body.
func writeError(w http.ResponseWriter, apiErr *Error) {
	if apiErr.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", apiErr.RetryAfterSeconds))
	}
	writeJSON(w, apiErr.Code, apiErr)
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
