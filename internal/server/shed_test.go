package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	bcc "repro"
	"repro/internal/guard"
)

// Contract: with ShedTierDepth set, an abcc request arriving while the
// queue is deeper than the threshold is answered by submod — HTTP 200,
// algo echoing the request, algo_served naming the fast tier — and the
// downgrade is counted in statz and bcc_shed_tier_total.
func TestShedTierDowngradesUnderQueuePressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 16, ShedTierDepth: 2})

	// Stall the single worker so submitted solves pile up in the queue.
	release := make(chan struct{})
	var once sync.Once
	guard.Arm("server.pool.dequeue", func() { <-release })
	defer func() {
		once.Do(func() { close(release) })
		guard.Disarm("server.pool.dequeue")
	}()

	// Fill the queue past the shed threshold with distinct instances
	// (distinct utilities → distinct fingerprints, so nothing collapses
	// through the cache or single-flight). The fillers request ig1 — a
	// tier the shed never touches — so the probe below is the only
	// request that can be downgraded and the counter assertion is exact.
	// Each filler blocks on the stalled worker, so fire them from
	// goroutines.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			solve(t, ts, SolveRequest{Instance: quickstartFormat(100 + float64(i)), Algo: "ig1"})
		}(i)
	}
	waitFor(t, func() bool { return s.pool.QueueDepth() > 2 })

	// The probe request must be downgraded at admission — it never waits
	// for the stalled worker's queue, but it does need a worker slot to
	// run submod, so release the stall right after it is keyed. To keep
	// the assertion deterministic, check the decision through the
	// response fields.
	probeDone := make(chan SolveResponse, 1)
	go func() {
		_, out := solve(t, ts, SolveRequest{Instance: quickstartFormat(999), Algo: "abcc"})
		probeDone <- out
	}()
	waitFor(t, func() bool { return s.shedTier.Load() >= 1 })
	once.Do(func() { close(release) })

	out := <-probeDone
	if out.Algo != "abcc" {
		t.Fatalf("algo = %q, want the requested abcc echoed", out.Algo)
	}
	if out.AlgoServed != "submod" {
		t.Fatalf("algo_served = %q, want submod", out.AlgoServed)
	}
	if out.Status != bcc.Complete.String() {
		t.Fatalf("status = %q, want complete", out.Status)
	}
	wg.Wait()

	st := statz(t, ts)
	if st.ShedTier == 0 {
		t.Fatal("statz shed_tier did not count the downgrade")
	}
	body := metricsBody(t, ts)
	if !strings.Contains(body, "bcc_shed_tier_total 1") {
		t.Fatalf("bcc_shed_tier_total missing or wrong in /metrics; shed lines:\n%s", grepLines(body, "shed"))
	}
}

// Contract: shedding is a per-request downgrade, not a cache poisoning —
// once pressure clears, the same abcc request gets a real abcc answer,
// because the shed result was cached under the submod key.
func TestShedTierDoesNotPoisonExactTierCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 16, ShedTierDepth: 1})

	release := make(chan struct{})
	var once sync.Once
	guard.Arm("server.pool.dequeue", func() { <-release })
	defer func() {
		once.Do(func() { close(release) })
		guard.Disarm("server.pool.dequeue")
	}()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			solve(t, ts, SolveRequest{Instance: quickstartFormat(200 + float64(i)), Algo: "ig1"})
		}(i)
	}
	waitFor(t, func() bool { return s.pool.QueueDepth() > 1 })

	shedDone := make(chan SolveResponse, 1)
	go func() {
		_, out := solve(t, ts, SolveRequest{Instance: quickstartFormat(777), Algo: "abcc"})
		shedDone <- out
	}()
	waitFor(t, func() bool { return s.shedTier.Load() >= 1 })
	once.Do(func() { close(release) })
	shed := <-shedDone
	wg.Wait()
	if shed.AlgoServed != "submod" {
		t.Fatalf("setup: pressure request was not shed (algo_served=%q)", shed.AlgoServed)
	}

	// Queue is drained; the same request must now run abcc for real and
	// must not be a cache hit off the shed (submod-keyed) entry.
	resp, calm := solve(t, ts, SolveRequest{Instance: quickstartFormat(777), Algo: "abcc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calm solve = %d", resp.StatusCode)
	}
	if calm.Algo != "abcc" || calm.AlgoServed != "" {
		t.Fatalf("calm answer algo=%q algo_served=%q, want a pure abcc answer", calm.Algo, calm.AlgoServed)
	}
	if calm.Cached {
		t.Fatal("calm abcc request hit the cache: the shed submod answer leaked into the abcc key")
	}
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
