package server

import (
	"context"
	"time"

	bcc "repro"
	"repro/internal/algo"
	"repro/internal/api"
)

// The wire types live in internal/api so internal/client can share them
// without importing the server (which imports the root façade, which
// re-exports the client). The aliases keep this package's historical
// names working for embedders and tests.
type (
	// SolveRequest is the body of POST /v1/solve.
	SolveRequest = api.SolveRequest
	// PlanClassifier is one selected classifier in a response plan.
	PlanClassifier = api.PlanClassifier
	// SolveResponse is the body of a successful solve.
	SolveResponse = api.SolveResponse
	// BatchRequest is the body of POST /v1/solve/batch.
	BatchRequest = api.BatchRequest
	// BatchItem is one element of a batch response.
	BatchItem = api.BatchItem
	// BatchResponse is the body of a /v1/solve/batch answer.
	BatchResponse = api.BatchResponse
	// Error is an API failure: HTTP status code plus JSON error body.
	Error = api.Error
)

func errorf(code int, format string, args ...any) *Error {
	return api.Errorf(code, format, args...)
}

// runSolve executes the requested solver through the registry
// (internal/algo) under ctx and prepares the full response (plan always
// included; solveOne strips it per request). It runs on a pool worker
// or a job worker. warm, when non-nil, seeds the anytime solvers with a
// previous incumbent so a resumed job never reports less than its last
// checkpoint; the one-shot algos ignore it (they finish in a single
// slice anyway). warmSource records the seed's provenance on the
// response (api.WarmSource*; empty for cold and checkpoint-resumed
// runs). prepareSolve already validated the algo name, so the registry
// lookup here cannot miss.
func runSolve(ctx context.Context, in *bcc.Instance, algoName string, req *SolveRequest, fp string, warm []bcc.PropSet, warmSource string) *SolveResponse {
	start := time.Now()
	resp := &SolveResponse{
		Fingerprint: fp,
		// The near-miss hash rides on every response (and thus into the
		// cache and its snapshots), powering the sibling warm-start index.
		Fingerprint2: in.Fingerprint2(),
		Algo:         algoName,
		Budget:       in.Budget(),
		Queries:      in.NumQueries(),
		WarmSource:   warmSource,
	}
	d, _ := algo.Lookup(algoName)
	out, err := d.Run(ctx, in, algo.Params{
		Seed:   req.Seed,
		Target: req.Target,
		Warm:   warm,
	})
	resp.Utility, resp.Cost, resp.Covered = out.Utility, out.Cost, out.Covered
	resp.Status = out.Status.String()
	if d.NeedsTarget {
		resp.Target = req.Target
	}
	resp.Achieved = out.Achieved
	resp.Ratio = out.Ratio
	switch {
	case err != nil:
		// A hard input rejection from a Run (none of the servable algos
		// produce one today, but a registered family may): surface it
		// like a contained solver failure rather than dropping it.
		resp.Status = bcc.Recovered.String()
		resp.SolverError = err.Error()
	case out.Err != nil:
		resp.SolverError = out.Err.Error()
	}
	if out.Solution != nil {
		u := in.Universe()
		for _, c := range out.Solution.Classifiers() {
			props := make([]string, c.Props.Len())
			for i, id := range c.Props {
				props[i] = u.Name(id)
			}
			resp.Classifiers = append(resp.Classifiers, PlanClassifier{Props: props, Cost: c.Cost})
		}
	}
	resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp
}
