package server

import (
	"context"
	"math"
	"time"

	bcc "repro"
	"repro/internal/api"
)

// The wire types live in internal/api so internal/client can share them
// without importing the server (which imports the root façade, which
// re-exports the client). The aliases keep this package's historical
// names working for embedders and tests.
type (
	// SolveRequest is the body of POST /v1/solve.
	SolveRequest = api.SolveRequest
	// PlanClassifier is one selected classifier in a response plan.
	PlanClassifier = api.PlanClassifier
	// SolveResponse is the body of a successful solve.
	SolveResponse = api.SolveResponse
	// BatchRequest is the body of POST /v1/solve/batch.
	BatchRequest = api.BatchRequest
	// BatchItem is one element of a batch response.
	BatchItem = api.BatchItem
	// BatchResponse is the body of a /v1/solve/batch answer.
	BatchResponse = api.BatchResponse
	// Error is an API failure: HTTP status code plus JSON error body.
	Error = api.Error
)

func errorf(code int, format string, args ...any) *Error {
	return api.Errorf(code, format, args...)
}

var validAlgos = map[string]bool{
	"abcc": true, "rand": true, "ig1": true, "ig2": true,
	"gmc3": true, "ecc": true,
}

// runSolve executes the requested solver under ctx and prepares the full
// response (plan always included; solveOne strips it per request). It
// runs on a pool worker or a job worker. warm, when non-nil, seeds the
// anytime solvers (abcc, gmc3) with a previous incumbent so a resumed
// job never reports less than its last checkpoint; the one-shot algos
// ignore it (they finish in a single slice anyway).
func runSolve(ctx context.Context, in *bcc.Instance, algo string, req *SolveRequest, fp string, warm []bcc.PropSet) *SolveResponse {
	start := time.Now()
	resp := &SolveResponse{
		Fingerprint: fp,
		Algo:        algo,
		Budget:      in.Budget(),
		Queries:     in.NumQueries(),
	}
	var (
		sol    *bcc.Solution
		status bcc.Status
		serr   error
	)
	switch algo {
	case "abcc":
		res := bcc.SolveCtx(ctx, in, bcc.Options{Seed: req.Seed, Warm: warm})
		sol, status, serr = res.Solution, res.Status, res.Err
		resp.Utility, resp.Cost, resp.Covered = res.Utility, res.Cost, res.Covered
	case "rand":
		res := bcc.SolveRand(in, req.Seed)
		sol = res.Solution
		resp.Utility, resp.Cost, resp.Covered = res.Utility, res.Cost, res.Covered
	case "ig1":
		res := bcc.SolveIG1(in)
		sol = res.Solution
		resp.Utility, resp.Cost, resp.Covered = res.Utility, res.Cost, res.Covered
	case "gmc3":
		res := bcc.SolveGMC3Ctx(ctx, in, req.Target, bcc.GMC3Options{Seed: req.Seed, Warm: warm})
		sol, status, serr = res.Solution, res.Status, res.Err
		resp.Utility, resp.Cost = res.Utility, res.Cost
		resp.Target = req.Target
		achieved := res.Achieved
		resp.Achieved = &achieved
		resp.Covered = countCovered(sol)
	case "ecc":
		res := bcc.SolveECCCtx(ctx, in)
		sol, status, serr = res.Solution, res.Status, res.Err
		resp.Utility, resp.Cost = res.Utility, res.Cost
		if !math.IsInf(res.Ratio, 0) {
			ratio := res.Ratio
			resp.Ratio = &ratio
		}
		resp.Covered = countCovered(sol)
	default: // "ig2"
		res := bcc.SolveIG2(in)
		sol = res.Solution
		resp.Utility, resp.Cost, resp.Covered = res.Utility, res.Cost, res.Covered
	}
	resp.Status = status.String()
	if serr != nil {
		resp.SolverError = serr.Error()
	}
	if sol != nil {
		u := in.Universe()
		for _, c := range sol.Classifiers() {
			props := make([]string, c.Props.Len())
			for i, id := range c.Props {
				props[i] = u.Name(id)
			}
			resp.Classifiers = append(resp.Classifiers, PlanClassifier{Props: props, Cost: c.Cost})
		}
	}
	resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp
}

func countCovered(sol *bcc.Solution) int {
	if sol == nil {
		return 0
	}
	return len(sol.CoveredQueries())
}
