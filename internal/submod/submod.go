// Package submod implements a practical budgeted submodular greedy for
// the BCC objective, after "Practical Budgeted Submodular Maximization"
// (arXiv:2007.04937): covered utility is monotone in the selected
// classifier set, so the classic lazy-greedy machinery applies with a
// coverage-progress surrogate for the marginal gain.
//
// The solver runs two lazy-greedy passes from the same warm base — one
// selecting by cost-scaled gain (gain/cost density) and one by unscaled
// gain — and keeps the better result ("max of both"), the standard rule
// that restores a constant-factor guarantee for the budgeted setting.
// Each pass maintains a lazily revalidated max-heap over candidate
// classifiers: the popped candidate's gain is recomputed against the
// current coverage and the candidate is either selected (still ahead of
// the next-best), re-pushed (stale), or dropped (no residual overlap or
// permanently unaffordable). The heap is hand-rolled so the selection
// loop does not allocate.
//
// The marginal-gain surrogate for classifier c is
//
//	Σ_q U(q) · |res(q) ∩ c| / |res(q)|
//
// over the uncovered queries containing c, where res(q) is the query's
// residual (not-yet-testable) part. On a query it completes the term is
// the full U(q); on others it credits partial progress, weighting
// nearly-done queries higher — which is what makes the greedy close
// covers instead of spreading thin.
//
// An IG1 greedy floor runs before the passes (unless disabled), so a
// deadline or cancellation mid-pass still returns an incumbent no worse
// than the IG1 baseline. Like every solver in this repository the entry
// point is anytime: see SolveCtx.
package submod

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/propset"
)

// Options tunes the budgeted submodular greedy. The zero value is the
// default configuration; the solver itself is deterministic (no seed).
type Options struct {
	// DisableGreedyFloor skips the initial IG1 run that anchors the
	// incumbent. With the floor enabled (default), the solver never
	// returns less utility than the IG1 baseline, even when stopped
	// mid-pass by a deadline.
	DisableGreedyFloor bool
	// Warm seeds the run with a previously found feasible plan — the
	// incumbent of an earlier checkpoint (internal/jobs) or a prior
	// anytime slice. Sets that fit the budget are selected into the
	// shared base before the floor and both passes, so a warm-started
	// run never returns less utility than the incumbent it was given.
	Warm []propset.Set
}

// Result reports a submodular-greedy run.
type Result struct {
	Solution *model.Solution
	// Utility is the total utility of the covered queries.
	Utility float64
	// Cost is the total construction cost of the selected classifiers.
	Cost float64
	// Covered is the number of covered queries.
	Covered int
	// Steps is the number of classifier selections across the floor and
	// both greedy passes.
	Steps int
	// Duration is the wall-clock solve time.
	Duration time.Duration
	// Status reports how the run ended; on any non-Complete status the
	// Solution is still the best feasible one found.
	Status guard.Status
	// Err is the context error or the contained panic when Status is
	// not Complete.
	Err error
}

// Solve runs the budgeted submodular greedy to completion.
func Solve(in *model.Instance, opts Options) Result {
	return SolveCtx(context.Background(), in, opts)
}

// SolveCtx is Solve under a context: on deadline expiry or cancellation
// the solver stops at the next guard check and returns the best feasible
// solution found so far (never worse than IG1 once the floor has run),
// with Result.Status reporting why it stopped. Panics are contained and
// reported as Status Recovered.
func SolveCtx(ctx context.Context, in *model.Instance, opts Options) (res Result) {
	start := time.Now()
	g := guard.New(ctx)
	rec := obs.FromContext(ctx)

	var best *cover.Tracker
	steps := 0
	finish := func() Result {
		var r Result
		if best != nil {
			r = Result{
				Solution: best.Solution(),
				Utility:  best.Utility(),
				Cost:     best.Cost(),
				Covered:  best.CoveredCount(),
			}
		} else {
			r = Result{Solution: model.NewSolution(in)}
		}
		r.Steps = steps
		r.Duration = time.Since(start)
		r.Status = g.Status()
		r.Err = g.Err()
		return r
	}
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finish()
		}
	}()

	// Shared base: free classifiers plus the warm incumbent. Both passes
	// and the floor start from it, so prior progress is never lost.
	free := cover.New(in)
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			free.Add(c.Props)
		}
	}
	base := free.Clone()
	for _, w := range opts.Warm {
		if base.Has(w) {
			continue
		}
		if base.Cost()+in.Cost(w) <= in.Budget()+1e-9 {
			base.Add(w)
		}
	}
	best = base.Clone()
	if g.Tripped() {
		return finish()
	}

	// Floor first: once this completes, any later stop returns an
	// incumbent no worse than the IG1 baseline. A poor warm seed can eat
	// the budget before the floor runs, so with a warm base the floor is
	// also evaluated warm-free — the warm contract (algo.Descriptor
	// .WarmStart) promises never to land below the cold IG1 utility.
	if !opts.DisableGreedyFloor {
		fl := base.Clone()
		steps += core.IG1Fill(g, fl)
		adopt(&best, fl)
		if len(opts.Warm) > 0 {
			cold := free.Clone()
			steps += core.IG1Fill(g, cold)
			adopt(&best, cold)
		}
	}

	for _, scaled := range []bool{true, false} {
		if g.Tripped() {
			break
		}
		guard.Inject("submod.pass")
		t0 := rec.Start()
		t := base.Clone()
		steps += lazyGreedy(g, t, scaled)
		rec.End(obs.StageSubmodPass, t0, t.CoveredCount())
		adopt(&best, t)
	}
	return finish()
}

// adopt replaces the incumbent when cand is strictly better: more
// utility, or equal utility at lower cost.
func adopt(best **cover.Tracker, cand *cover.Tracker) {
	if cand.Utility() > (*best).Utility() ||
		(cand.Utility() == (*best).Utility() && cand.Cost() < (*best).Cost()) {
		*best = cand
	}
}

// scorer computes the marginal coverage-utility gain of a candidate
// classifier against a tracker's current coverage. The relevance lists
// are resolved once up front (propset.Key allocates), so gain itself is
// allocation-free — it is the hot path of the lazy queue and is pinned
// at zero allocs by TestScorerGainAllocs.
type scorer struct {
	t           *cover.Tracker
	queries     []model.Query
	classifiers []model.Classifier
	rel         [][]int
}

func newScorer(t *cover.Tracker) *scorer {
	in := t.Instance()
	cl := in.Classifiers()
	rel := make([][]int, len(cl))
	for ci := range cl {
		rel[ci] = t.RelevantQueries(cl[ci].Props)
	}
	return &scorer{t: t, queries: in.Queries(), classifiers: cl, rel: rel}
}

// gain is Σ_q U(q)·|res(q)∩c|/|res(q)| over the uncovered queries
// containing classifier ci.
func (sc *scorer) gain(ci int) float64 {
	c := sc.classifiers[ci].Props
	total := 0.0
	for _, qi := range sc.rel[ci] {
		if sc.t.Covered(qi) {
			continue
		}
		res := sc.t.Residual(qi)
		hit := countIntersect(res, c)
		if hit == 0 {
			continue
		}
		total += sc.queries[qi].Utility * float64(hit) / float64(res.Len())
	}
	return total
}

// countIntersect counts |a ∩ b| by sorted-merge without materializing
// the intersection.
func countIntersect(a, b propset.Set) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// lazyGreedy runs one lazy-evaluation greedy pass on t, selecting by
// cost-scaled gain (scaled) or raw gain until nothing affordable gains.
// It returns the number of selections.
func lazyGreedy(g *guard.Guard, t *cover.Tracker, scaled bool) int {
	sc := newScorer(t)
	score := func(ci int) float64 {
		gain := sc.gain(ci)
		if gain <= 0 {
			return 0
		}
		if scaled {
			return gain / sc.classifiers[ci].Cost
		}
		return gain
	}

	// Free classifiers are in the base already; everything else with a
	// positive initial score enters the queue. The heap never grows past
	// its initial size (each pop re-pushes at most once), so the loop
	// below stays allocation-free.
	h := make(lazyHeap, 0, len(sc.classifiers))
	for ci := range sc.classifiers {
		if sc.classifiers[ci].Cost <= 0 || t.Has(sc.classifiers[ci].Props) {
			continue
		}
		if s := score(ci); s > 0 {
			h = append(h, centry{ci, s})
		}
	}
	h.init()

	steps := 0
	for len(h) > 0 {
		if g.Check() {
			break
		}
		guard.Inject("submod.step")
		e := h.pop()
		s := score(e.ci)
		if s <= 0 {
			// No residual overlap left: the candidate can never gain
			// again (residuals only shrink), drop it permanently.
			continue
		}
		if len(h) > 0 && s < h[0].score-1e-12 {
			// Stale: worse than the next-best claim, re-enqueue.
			h.push(centry{e.ci, s})
			continue
		}
		c := sc.classifiers[e.ci]
		if c.Cost > t.Remaining()+1e-9 {
			// The remaining budget only shrinks: drop permanently.
			continue
		}
		t.Add(c.Props)
		steps++
	}
	return steps
}

// centry is one lazy-queue candidate: a classifier index with its last
// computed score.
type centry struct {
	ci    int
	score float64
}

// lazyHeap is a hand-rolled max-heap over centry. container/heap would
// box every Push/Pop value into an interface, allocating on the hot
// path; the explicit version keeps the selection loop alloc-free.
type lazyHeap []centry

func (h lazyHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *lazyHeap) push(e centry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *lazyHeap) pop() centry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	(*h).down(0)
	return top
}

func (h lazyHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].score >= h[i].score {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h lazyHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h[l].score > h[best].score {
			best = l
		}
		if r < n && h[r].score > h[best].score {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
