package submod

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/propset"
)

// randomInstance mirrors the generator of internal/core's tests so the
// anytime-contract suite runs on comparable workloads.
func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int, budget float64) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(20)))
	}
	costSeed := rng.Int63()
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := costSeed
		for _, id := range s {
			h = h*31 + int64(id) + 7
		}
		return 1 + float64((h%7+7)%7)
	})
	return b.MustInstance(budget)
}

func anytimeInstance(seed int64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return randomInstance(rng, 30, 400, 3, 60)
}

func checkFeasible(t *testing.T, in *model.Instance, res Result) {
	t.Helper()
	if res.Solution == nil {
		t.Fatal("nil Solution")
	}
	if res.Cost > in.Budget()+1e-9 {
		t.Fatalf("cost %v exceeds budget %v", res.Cost, in.Budget())
	}
	if got := res.Solution.Cost(); got > in.Budget()+1e-9 {
		t.Fatalf("solution cost %v exceeds budget %v", got, in.Budget())
	}
}

func TestSolveFeasibleAndNeverBelowIG1(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := anytimeInstance(seed)
		res := Solve(in, Options{})
		if res.Status != guard.Complete {
			t.Fatalf("seed %d: Status = %v, want Complete", seed, res.Status)
		}
		checkFeasible(t, in, res)
		ig1 := core.SolveIG1(in)
		if res.Utility < ig1.Utility {
			t.Errorf("seed %d: utility %v below IG1 floor %v", seed, res.Utility, ig1.Utility)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	in := anytimeInstance(7)
	a := Solve(in, Options{})
	b := Solve(in, Options{})
	if a.Utility != b.Utility || a.Cost != b.Cost || a.Steps != b.Steps {
		t.Fatalf("two runs diverged: %v/%v vs %v/%v", a.Utility, a.Cost, b.Utility, b.Cost)
	}
	ca, cb := a.Solution.Classifiers(), b.Solution.Classifiers()
	if len(ca) != len(cb) {
		t.Fatalf("plans differ in size: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if !ca[i].Props.Equal(cb[i].Props) {
			t.Fatalf("plan diverged at %d: %v vs %v", i, ca[i].Props, cb[i].Props)
		}
	}
}

func TestWarmStartNeverRegresses(t *testing.T) {
	in := anytimeInstance(8)
	first := Solve(in, Options{})
	var warm []propset.Set
	for _, c := range first.Solution.Classifiers() {
		warm = append(warm, c.Props)
	}
	// Even with the floor disabled, a warm-started run must keep the
	// incumbent it was given (the checkpointed-slice contract).
	res := Solve(in, Options{Warm: warm, DisableGreedyFloor: true})
	checkFeasible(t, in, res)
	if res.Utility < first.Utility {
		t.Errorf("warm-started utility %v below incumbent %v", res.Utility, first.Utility)
	}
}

func TestExpiredDeadlineReturnsFast(t *testing.T) {
	in := anytimeInstance(1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	res := SolveCtx(ctx, in, Options{})
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("expired-context solve took %v, want < 10ms", elapsed)
	}
	if res.Status != guard.DeadlineExceeded {
		t.Errorf("Status = %v, want DeadlineExceeded", res.Status)
	}
	if res.Err == nil {
		t.Error("Err = nil on a deadline-exceeded run")
	}
	checkFeasible(t, in, res)
}

func TestGenerousDeadlineMatchesSolve(t *testing.T) {
	in := anytimeInstance(2)
	plain := Solve(in, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res := SolveCtx(ctx, in, Options{})
	if res.Status != guard.Complete {
		t.Fatalf("Status = %v (err %v), want Complete", res.Status, res.Err)
	}
	if res.Utility != plain.Utility || res.Cost != plain.Cost {
		t.Errorf("generous deadline diverged: utility %v/%v, cost %v/%v",
			res.Utility, plain.Utility, res.Cost, plain.Cost)
	}
}

func TestCancelBeforePassesKeepsIG1Floor(t *testing.T) {
	// The floor runs before the greedy passes, so a cancellation armed at
	// the first pass boundary must still return at least the IG1 result.
	in := anytimeInstance(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	guard.Arm("submod.pass", guard.CancelFault(cancel))
	defer guard.DisarmAll()
	res := SolveCtx(ctx, in, Options{})
	if res.Status != guard.Canceled {
		t.Errorf("Status = %v, want Canceled", res.Status)
	}
	checkFeasible(t, in, res)
	ig1 := core.SolveIG1(in)
	if res.Utility < ig1.Utility {
		t.Errorf("canceled run utility %v below IG1 floor %v", res.Utility, ig1.Utility)
	}
}

func TestCancelMidPassKeepsIG1Floor(t *testing.T) {
	in := anytimeInstance(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	guard.Arm("submod.step", guard.CancelFault(cancel))
	defer guard.DisarmAll()
	res := SolveCtx(ctx, in, Options{})
	if res.Status != guard.Canceled {
		t.Errorf("Status = %v, want Canceled", res.Status)
	}
	checkFeasible(t, in, res)
	ig1 := core.SolveIG1(in)
	if res.Utility < ig1.Utility {
		t.Errorf("canceled run utility %v below IG1 floor %v", res.Utility, ig1.Utility)
	}
}

func TestArmedPanicSurfacesAsRecovered(t *testing.T) {
	in := anytimeInstance(5)
	guard.Arm("submod.pass", guard.PanicFault("injected: submod.pass"))
	defer guard.DisarmAll()
	res := SolveCtx(context.Background(), in, Options{})
	if res.Status != guard.Recovered {
		t.Fatalf("Status = %v, want Recovered", res.Status)
	}
	if res.Err == nil {
		t.Fatal("Err = nil on a recovered run")
	}
	checkFeasible(t, in, res)
}

func TestDisableGreedyFloor(t *testing.T) {
	in := anytimeInstance(6)
	res := Solve(in, Options{DisableGreedyFloor: true})
	if res.Status != guard.Complete {
		t.Fatalf("Status = %v, want Complete", res.Status)
	}
	checkFeasible(t, in, res)
	if res.Utility <= 0 {
		t.Errorf("utility = %v, want > 0", res.Utility)
	}
}

// TestScorerGainAllocs pins the lazy-queue hot path at zero
// allocations: gain must stay a pure merge-count over precomputed
// relevance lists (propset.Key and any set materialization are banned
// from it).
func TestScorerGainAllocs(t *testing.T) {
	in := anytimeInstance(9)
	tr := cover.New(in)
	// Partial coverage makes gain exercise the covered, partially
	// covered and untouched branches.
	cl := in.Classifiers()
	for i := 0; i < len(cl); i += 7 {
		if cl[i].Cost <= tr.Remaining() {
			tr.Add(cl[i].Props)
		}
	}
	sc := newScorer(tr)
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		for ci := 0; ci < len(cl); ci += 3 {
			sink += sc.gain(ci)
		}
	})
	if allocs != 0 {
		t.Errorf("scorer.gain allocates %v per run, want 0", allocs)
	}
	_ = sink
}

func TestLazyHeapOrdering(t *testing.T) {
	h := make(lazyHeap, 0, 8)
	for _, s := range []float64{3, 1, 4, 1.5, 9, 2.6} {
		h.push(centry{ci: int(s * 10), score: s})
	}
	prev := float64(10)
	for len(h) > 0 {
		e := h.pop()
		if e.score > prev {
			t.Fatalf("heap popped %v after %v", e.score, prev)
		}
		prev = e.score
	}
}
